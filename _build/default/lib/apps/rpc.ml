(* A small binary RPC library in the style of RPClib (§5.3.3).

   Frame: 4-byte little-endian total length, 4-byte call id, 2-byte method
   name length, method name, payload.  The response echoes the call id.
   Like RPClib (and unlike eRPC), the library itself adds serialization
   overhead on top of the socket — the paper's point is that the stack
   improvement still cuts RPC latency roughly in half. *)

let frame ~call_id ~meth ~payload =
  let mlen = String.length meth in
  let total = 4 + 4 + 2 + mlen + Bytes.length payload in
  let b = Bytes.create total in
  Bytes.set_int32_le b 0 (Int32.of_int total);
  Bytes.set_int32_le b 4 (Int32.of_int call_id);
  Bytes.set_uint16_le b 8 mlen;
  Bytes.blit_string meth 0 b 10 mlen;
  Bytes.blit payload 0 b (10 + mlen) (Bytes.length payload);
  b

let parse b =
  let call_id = Int32.to_int (Bytes.get_int32_le b 4) in
  let mlen = Bytes.get_uint16_le b 8 in
  let meth = Bytes.sub_string b 10 mlen in
  let payload = Bytes.sub b (10 + mlen) (Bytes.length b - 10 - mlen) in
  (call_id, meth, payload)

(* Simulated per-call marshalling overhead: RPClib's dynamic dispatch and
   msgpack encoding dominate its profile (the paper measures 45 us intra-host
   RTT over an 11 us socket, and notes eRPC-class libraries are far leaner). *)
let marshal_overhead_ns = 5_000

module Make (Api : Sock_api.S) = struct
  module Io = Sock_api.Io (Api)

  type server = { handlers : (string, Bytes.t -> Bytes.t) Hashtbl.t }

  let create_server () = { handlers = Hashtbl.create 8 }
  let register srv name fn = Hashtbl.replace srv.handlers name fn

  let read_frame io =
    match Io.read_exact io 4 with
    | None -> None
    | Some hdr ->
      let total = Int32.to_int (Bytes.get_int32_le hdr 0) in
      (match Io.read_exact io (total - 4) with
      | None -> None
      | Some rest ->
        let b = Bytes.create total in
        Bytes.blit hdr 0 b 0 4;
        Bytes.blit rest 0 b 4 (total - 4);
        Some b)

  let serve ep listener srv ~calls =
    let conn = Api.accept ep listener in
    let io = Io.make ep conn in
    let rec go n =
      if n > 0 then
        match read_frame io with
        | None -> ()
        | Some b ->
          let call_id, meth, payload = parse b in
          Sds_sim.Proc.sleep_ns marshal_overhead_ns;
          let result =
            match Hashtbl.find_opt srv.handlers meth with
            | Some fn -> fn payload
            | None -> Bytes.of_string "ERR:no-such-method"
          in
          let out = frame ~call_id ~meth:"" ~payload:result in
          (* RPClib writes the length prefix and the body separately — an
             extra socket operation per message, cheap on SocksDirect,
             another wakeup on the kernel path. *)
          Io.write_all io out ~off:0 ~len:4;
          Io.write_all io out ~off:4 ~len:(Bytes.length out - 4);
          go (n - 1)
    in
    go calls;
    Io.close io

  type client = { io : Io.t; mutable next_id : int }

  let connect ep ~dst ~port =
    let conn = Api.connect ep ~dst ~port in
    { io = Io.make ep conn; next_id = 1 }

  let call client ~meth ~payload =
    let id = client.next_id in
    client.next_id <- id + 1;
    Sds_sim.Proc.sleep_ns marshal_overhead_ns;
    let b = frame ~call_id:id ~meth ~payload in
    Io.write_all client.io b ~off:0 ~len:4;
    Io.write_all client.io b ~off:4 ~len:(Bytes.length b - 4);
    match read_frame client.io with
    | None -> failwith "rpc: connection closed"
    | Some reply ->
      let rid, _, result = parse reply in
      if rid <> id then failwith "rpc: call id mismatch";
      Sds_sim.Proc.sleep_ns marshal_overhead_ns;
      result

  let close client = Io.close client.io
end
