(* A Redis-like key-value store speaking a RESP-style protocol (§5.3.2).

   Wire format (a faithful subset of RESP):
     request:  "*<n>\r\n" then n bulk strings "$<len>\r\n<bytes>\r\n"
     reply:    "$<len>\r\n<bytes>\r\n"  |  "+OK\r\n"  |  "$-1\r\n" (miss)

   The server is single-threaded over one keep-alive connection, like
   redis-benchmark with a single client. *)

(* Per-command application time: command dispatch and the event loop on the
   server, plus redis-benchmark's own bookkeeping on the client — the part
   of the paper's 14.1 us SocksDirect GET latency that is not socket
   stack. *)
let app_work_ns = 5_000

module Make (Api : Sock_api.S) = struct
  module Io = Sock_api.Io (Api)

  let write_bulk io (s : string) =
    Io.write_string io (Printf.sprintf "$%d\r\n%s\r\n" (String.length s) s)

  let write_command io parts =
    Io.write_string io (Printf.sprintf "*%d\r\n" (List.length parts));
    List.iter (write_bulk io) parts

  let read_bulk io =
    match Io.read_line io with
    | None -> None
    | Some line when String.length line > 0 && line.[0] = '$' ->
      let n = int_of_string (String.sub line 1 (String.length line - 1)) in
      if n < 0 then Some None
      else (
        match Io.read_exact io (n + 2) with
        | Some b -> Some (Some (Bytes.sub_string b 0 n))
        | None -> None)
    | Some line when String.length line > 0 && line.[0] = '+' ->
      Some (Some (String.sub line 1 (String.length line - 1)))
    | Some _ -> None

  let read_command io =
    match Io.read_line io with
    | None -> None
    | Some line when String.length line > 0 && line.[0] = '*' ->
      let n = int_of_string (String.sub line 1 (String.length line - 1)) in
      let rec parts acc k =
        if k = 0 then Some (List.rev acc)
        else
          match read_bulk io with
          | Some (Some s) -> parts (s :: acc) (k - 1)
          | _ -> None
      in
      parts [] n
    | Some _ -> None

  (* Serve [requests] commands on one accepted connection. *)
  let run_server ep listener ~requests =
    let table : (string, string) Hashtbl.t = Hashtbl.create 1024 in
    let conn = Api.accept ep listener in
    let io = Io.make ep conn in
    let rec serve n =
      if n > 0 then
        match read_command io with
        | Some [ "SET"; k; v ] ->
          Sds_sim.Proc.sleep_ns app_work_ns;
          Hashtbl.replace table k v;
          Io.write_string io "+OK\r\n";
          serve (n - 1)
        | Some [ "GET"; k ] ->
          Sds_sim.Proc.sleep_ns app_work_ns;
          (match Hashtbl.find_opt table k with
          | Some v -> write_bulk io v
          | None -> Io.write_string io "$-1\r\n");
          serve (n - 1)
        | Some [ "DEL"; k ] ->
          Hashtbl.remove table k;
          Io.write_string io "+OK\r\n";
          serve (n - 1)
        | Some _ ->
          Io.write_string io "$-1\r\n";
          serve (n - 1)
        | None -> ()
    in
    serve requests;
    Io.close io

  (* redis-benchmark-style client: SET once, then GET in a closed loop. *)
  let run_client ep ~server ~port ~gets ~value_size ~on_latency =
    let conn = Api.connect ep ~dst:server ~port in
    let io = Io.make ep conn in
    let engine = Sds_sim.Proc.engine (Sds_sim.Proc.self ()) in
    write_command io [ "SET"; "bench"; String.make value_size 'v' ];
    (match read_bulk io with Some (Some "OK") -> () | _ -> failwith "kv: SET failed");
    for _ = 1 to gets do
      let t0 = Sds_sim.Engine.now engine in
      write_command io [ "GET"; "bench" ];
      (match read_bulk io with
      | Some (Some v) -> assert (String.length v = value_size)
      | _ -> failwith "kv: GET failed");
      on_latency (Sds_sim.Engine.now engine - t0)
    done;
    Io.close io
end
