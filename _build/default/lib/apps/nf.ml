(* Network-function pipeline (§5.3.4, Figure 12).

   64-byte packets in pcap-record format flow source -> NF1 -> ... -> NFk ->
   sink; every NF is its own process reading packets from stdin-like input,
   updating local counters, and writing to stdout-like output.  Channels are
   pluggable: SocksDirect connections, kernel TCP connections, kernel pipes
   — plus a NetBricks-style single-process composition as the reference. *)

(* pcap record header: ts_sec, ts_usec, incl_len, orig_len — 16 bytes. *)
let pcap_header_bytes = 16
let packet_payload = 48
let packet_bytes = pcap_header_bytes + packet_payload

let make_packet ~seq =
  let b = Bytes.create packet_bytes in
  Bytes.set_int32_le b 0 (Int32.of_int (seq / 1_000_000));
  Bytes.set_int32_le b 4 (Int32.of_int (seq mod 1_000_000));
  Bytes.set_int32_le b 8 (Int32.of_int packet_payload);
  Bytes.set_int32_le b 12 (Int32.of_int packet_payload);
  Bytes.fill b pcap_header_bytes packet_payload (Char.chr (seq land 0xff));
  b

(* The per-packet NF work itself: parse the header, bump counters. *)
let nf_work counters pkt =
  let len = Int32.to_int (Bytes.get_int32_le pkt 8) in
  counters.(0) <- counters.(0) + 1;
  counters.(1) <- counters.(1) + len;
  (* ~40 ns of per-packet CPU (header parse + counter update) *)
  Sds_sim.Proc.sleep_ns 40

module type Channel = sig
  type rd
  type wr

  val read_packet : rd -> Bytes.t option
  val write_packet : wr -> Bytes.t -> unit
  val close_wr : wr -> unit
end

module Run (C : Channel) = struct
  (* One NF process: input -> work -> output. *)
  let nf_stage ~input ~output =
    let counters = [| 0; 0 |] in
    let rec loop () =
      match C.read_packet input with
      | None -> C.close_wr output
      | Some pkt ->
        nf_work counters pkt;
        C.write_packet output pkt;
        loop ()
    in
    loop ();
    counters.(0)

  let source ~output ~packets =
    for seq = 1 to packets do
      C.write_packet output (make_packet ~seq)
    done;
    C.close_wr output

  let sink ~input =
    let n = ref 0 in
    let rec loop () =
      match C.read_packet input with
      | None -> !n
      | Some pkt ->
        assert (Bytes.length pkt = packet_bytes);
        incr n;
        loop ()
    in
    loop ()
end

(* Socket-based channel over any stack. *)
module Sock_channel (Api : Sock_api.S) = struct
  module Io = Sock_api.Io (Api)

  type rd = Io.t
  type wr = Io.t

  let read_packet io =
    match Io.read_exact io packet_bytes with
    | Some b -> if Bytes.length b = 0 then None else Some b
    | None -> None

  let write_packet io b = Io.write_all io b ~off:0 ~len:(Bytes.length b)

  (* Closing the write side sends FIN so EOF propagates down the chain. *)
  let close_wr io = Io.close io
end

(* Kernel pipe channel. *)
module Pipe_channel = struct
  module K = Sds_kernel.Kernel

  type rd = K.process * int
  type wr = K.process * int

  let read_packet (proc, fd) =
    let b = Bytes.create packet_bytes in
    let rec fill off =
      if off = packet_bytes then Some b
      else
        let n = K.recv proc fd b ~off ~len:(packet_bytes - off) in
        if n = 0 then None else fill (off + n)
    in
    fill 0

  let write_packet (proc, fd) b = ignore (K.send proc fd b ~off:0 ~len:(Bytes.length b))
  let close_wr (proc, fd) = K.close proc fd
end

(* NetBricks-style reference: all NFs composed in one process, no IPC. *)
let netbricks_pipeline ~stages ~packets =
  let counters = Array.init stages (fun _ -> [| 0; 0 |]) in
  for seq = 1 to packets do
    let pkt = make_packet ~seq in
    for s = 0 to stages - 1 do
      nf_work counters.(s) pkt
    done
  done;
  Array.fold_left (fun acc c -> acc + c.(0)) 0 counters
