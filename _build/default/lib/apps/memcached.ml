(* A Memcached-like server speaking the binary protocol (§2, §2.2: one of
   the applications whose kernel time motivates the paper).

   Wire format (faithful subset of the memcached binary protocol):
     request:  0x80 | opcode | key len (2B) | 0 | 0 | 0 (2B) | total body
               (4B) | opaque (4B) | cas (8B) | key | value
     response: 0x81 | opcode | key len | 0 | 0 | status (2B) | total body |
               opaque | cas | value
   Opcodes: 0x00 GET, 0x01 SET, 0x04 DELETE. *)

let req_magic = 0x80
let res_magic = 0x81

type opcode = Get | Set | Delete

let opcode_byte = function Get -> 0x00 | Set -> 0x01 | Delete -> 0x04

let opcode_of_byte = function
  | 0x00 -> Some Get
  | 0x01 -> Some Set
  | 0x04 -> Some Delete
  | _ -> None

let header_bytes = 24

type packet = {
  magic : int;
  op : opcode;
  status : int;  (** 0 ok, 1 not found; requests carry 0 *)
  opaque : int;
  key : string;
  value : Bytes.t;
}

let encode p =
  let klen = String.length p.key in
  let vlen = Bytes.length p.value in
  let total = klen + vlen in
  let b = Bytes.create (header_bytes + total) in
  Bytes.set_uint8 b 0 p.magic;
  Bytes.set_uint8 b 1 (opcode_byte p.op);
  Bytes.set_uint16_be b 2 klen;
  Bytes.set_uint8 b 4 0 (* extras len *);
  Bytes.set_uint8 b 5 0 (* data type *);
  Bytes.set_uint16_be b 6 p.status;
  Bytes.set_int32_be b 8 (Int32.of_int total);
  Bytes.set_int32_be b 12 (Int32.of_int p.opaque);
  Bytes.set_int64_be b 16 0L (* cas *);
  Bytes.blit_string p.key 0 b header_bytes klen;
  Bytes.blit p.value 0 b (header_bytes + klen) vlen;
  b

let decode_header b =
  let magic = Bytes.get_uint8 b 0 in
  let op = opcode_of_byte (Bytes.get_uint8 b 1) in
  let klen = Bytes.get_uint16_be b 2 in
  let status = Bytes.get_uint16_be b 6 in
  let total = Int32.to_int (Bytes.get_int32_be b 8) in
  let opaque = Int32.to_int (Bytes.get_int32_be b 12) in
  (magic, op, klen, status, total, opaque)

module Make (Api : Sock_api.S) = struct
  module Io = Sock_api.Io (Api)

  let read_packet io =
    match Io.read_exact io header_bytes with
    | None -> None
    | Some hdr -> (
      let magic, op, klen, status, total, opaque = decode_header hdr in
      match op with
      | None -> None
      | Some op -> (
        match Io.read_exact io total with
        | None -> None
        | Some body ->
          let key = Bytes.sub_string body 0 klen in
          let value = Bytes.sub body klen (total - klen) in
          Some { magic; op; status; opaque; key; value }))

  let write_packet io p =
    let b = encode p in
    Io.write_all io b ~off:0 ~len:(Bytes.length b)

  (* Serve [requests] commands on one accepted connection. *)
  let run_server ep listener ~requests =
    let table : (string, Bytes.t) Hashtbl.t = Hashtbl.create 1024 in
    let conn = Api.accept ep listener in
    let io = Io.make ep conn in
    let respond ~op ~status ~opaque ?(value = Bytes.empty) () =
      write_packet io { magic = res_magic; op; status; opaque; key = ""; value }
    in
    let rec serve n =
      if n > 0 then
        match read_packet io with
        | None -> ()
        | Some req when req.magic <> req_magic -> serve n (* ignore garbage *)
        | Some req ->
          (match req.op with
          | Set ->
            Hashtbl.replace table req.key req.value;
            respond ~op:Set ~status:0 ~opaque:req.opaque ()
          | Get -> (
            match Hashtbl.find_opt table req.key with
            | Some v -> respond ~op:Get ~status:0 ~opaque:req.opaque ~value:v ()
            | None -> respond ~op:Get ~status:1 ~opaque:req.opaque ())
          | Delete ->
            let existed = Hashtbl.mem table req.key in
            Hashtbl.remove table req.key;
            respond ~op:Delete ~status:(if existed then 0 else 1) ~opaque:req.opaque ());
          serve (n - 1)
    in
    serve requests;
    Io.close io

  type client = { io : Io.t; mutable next_opaque : int }

  let connect ep ~dst ~port =
    { io = Io.make ep (Api.connect ep ~dst ~port); next_opaque = 1 }

  let request client ~op ~key ~value =
    let opaque = client.next_opaque in
    client.next_opaque <- opaque + 1;
    write_packet client.io { magic = req_magic; op; status = 0; opaque; key; value };
    match read_packet client.io with
    | Some resp when resp.opaque = opaque -> (resp.status, resp.value)
    | Some _ -> failwith "memcached: opaque mismatch"
    | None -> failwith "memcached: connection closed"

  let set client ~key ~value = fst (request client ~op:Set ~key ~value)
  let delete client ~key = fst (request client ~op:Delete ~key ~value:Bytes.empty)

  let get client ~key =
    match request client ~op:Get ~key ~value:Bytes.empty with
    | 0, v -> Some v
    | _, _ -> None

  let close client = Io.close client.io
end
