(* Minimal HTTP/1.1 plus an Nginx-style reverse proxy (§5.3.1, Figure 11).

   The proxy accepts keep-alive connections from a request generator,
   forwards each request to an upstream response generator over a separate
   keep-alive connection, and relays the response back.  Parsing is real
   (request line, headers, Content-Length framing), so what the benchmark
   measures is the socket stack underneath an actual protocol workload. *)

(* Per-request application processing (logging, config lookup, header
   rewriting) — roughly what production Nginx spends outside the socket
   stack.  Without this the stack speedup would look unrealistically large
   end-to-end (Amdahl). *)
let app_work_ns = 8_000

type request = { meth : string; path : string; headers : (string * string) list }
type response = { status : int; resp_headers : (string * string) list; body : Bytes.t }

let content_length headers =
  match List.assoc_opt "content-length" headers with
  | Some v -> (try int_of_string (String.trim v) with _ -> 0)
  | None -> 0

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
    let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
    let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    Some (k, v)

let format_request r =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" r.meth r.path);
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) r.headers;
  Buffer.add_string b "\r\n";
  Buffer.contents b

let format_response_head r =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d OK\r\n" r.status);
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v)) r.resp_headers;
  Buffer.add_string b "\r\n";
  Buffer.contents b

module Make (Api : Sock_api.S) = struct
  module Io = Sock_api.Io (Api)

  (* Read one request (no body support needed for GET). *)
  let read_request io =
    match Io.read_line io with
    | None -> None
    | Some reqline -> (
      match String.split_on_char ' ' reqline with
      | meth :: path :: _ ->
        let rec headers acc =
          match Io.read_line io with
          | None | Some "" -> List.rev acc
          | Some line -> (
            match parse_header_line line with
            | Some kv -> headers (kv :: acc)
            | None -> headers acc)
        in
        Some { meth; path; headers = headers [] }
      | _ -> None)

  let read_response io =
    match Io.read_line io with
    | None -> None
    | Some statusline -> (
      let status =
        match String.split_on_char ' ' statusline with
        | _ :: code :: _ -> (try int_of_string code with _ -> 500)
        | _ -> 500
      in
      let rec headers acc =
        match Io.read_line io with
        | None | Some "" -> List.rev acc
        | Some line -> (
          match parse_header_line line with
          | Some kv -> headers (kv :: acc)
          | None -> headers acc)
      in
      let hs = headers [] in
      let len = content_length hs in
      match Io.read_exact io len with
      | Some body -> Some { status; resp_headers = hs; body }
      | None -> None)

  let write_request io r = Io.write_string io (format_request r)

  let write_response io r =
    Io.write_string io (format_response_head r);
    Io.write_all io r.body ~off:0 ~len:(Bytes.length r.body)

  (* Upstream: answers every GET with a body of the size encoded in the
     path ("/bytes/<n>"). *)
  let run_responder ep listener ~requests =
    let conn = Api.accept ep listener in
    let io = Io.make ep conn in
    let rec serve n =
      if n > 0 then
        match read_request io with
        | None -> ()
        | Some req ->
          Sds_sim.Proc.sleep_ns app_work_ns;
          let size =
            match String.split_on_char '/' req.path with
            | [ ""; "bytes"; n ] -> (try int_of_string n with _ -> 64)
            | _ -> 64
          in
          let body = Bytes.make size 'x' in
          write_response io
            { status = 200; resp_headers = [ ("content-length", string_of_int size) ]; body };
          serve (n - 1)
    in
    serve requests;
    Io.close io

  (* The reverse proxy: one downstream keep-alive connection, one upstream
     keep-alive connection. *)
  let run_proxy ep ~listener ~upstream ~upstream_port ~requests =
    let down = Api.accept ep listener in
    let down_io = Io.make ep down in
    let up = Api.connect ep ~dst:upstream ~port:upstream_port in
    let up_io = Io.make ep up in
    let rec relay n =
      if n > 0 then
        match read_request down_io with
        | None -> ()
        | Some req ->
          Sds_sim.Proc.sleep_ns app_work_ns;
          write_request up_io { req with headers = ("via", "sds-proxy") :: req.headers };
          (match read_response up_io with
          | None -> ()
          | Some resp ->
            write_response down_io resp;
            relay (n - 1))
    in
    relay requests;
    Io.close up_io;
    Io.close down_io

  (* Client: sends GETs and measures whole-response latency. *)
  let run_generator ep ~proxy ~port ~requests ~size ~on_latency =
    let conn = Api.connect ep ~dst:proxy ~port in
    let io = Io.make ep conn in
    let engine = Sds_sim.Proc.engine (Sds_sim.Proc.self ()) in
    for _ = 1 to requests do
      let t0 = Sds_sim.Engine.now engine in
      write_request io
        { meth = "GET"; path = Printf.sprintf "/bytes/%d" size; headers = [ ("host", "bench") ] };
      (match read_response io with
      | Some resp ->
        assert (Bytes.length resp.body = size);
        on_latency (Sds_sim.Engine.now engine - t0)
      | None -> failwith "generator: connection closed early")
    done;
    Io.close io
end
