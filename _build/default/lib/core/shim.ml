(* The glibc-interposition surface (§3).

   Real libsd is LD_PRELOADed and intercepts every FD-related C-library
   call, implementing socket FDs in user space and forwarding everything
   else to the kernel through the FD remapping table.  This module is that
   uniform surface: read/write/close/fcntl/sockopt calls that work the same
   whether the descriptor is a SocksDirect socket, a kernel TCP fallback, a
   pipe end, or a plain file. *)

open Sds_sim
module Kernel = Sds_kernel.Kernel
module Fd_table = Sds_kernel.Fd_table

exception Not_supported of string

(* ---- files (always kernel-backed) ---- *)

(* open(2) on a regular file: kernel FD, exposed through the remapping
   table like any non-socket descriptor. *)
let open_file th path =
  let kproc = Libsd.thread_kernel_process th in
  let kfd = Kernel.open_file kproc path in
  Libsd.register_kernel_fd th kfd

(* ---- unified read/write ---- *)

(* read(2): sockets, pipes and fallback connections all answer. *)
let read th fd buf ~off ~len = Libsd.recv th fd buf ~off ~len

(* write(2). *)
let write th fd buf ~off ~len = Libsd.send th fd buf ~off ~len

let close th fd = Libsd.close th fd

(* ---- fcntl ---- *)

type fcntl_cmd =
  | F_GETFL
  | F_SETFL of { nonblock : bool }
  | F_DUPFD

let fcntl th fd cmd =
  match cmd with
  | F_GETFL -> (
    match Libsd.lookup th fd with
    | Libsd.U s -> if s.Sock.nonblocking then 1 else 0
    | Libsd.K _ | Libsd.Ep _ -> 0)
  | F_SETFL { nonblock } ->
    Libsd.set_nonblocking th fd nonblock;
    0
  | F_DUPFD -> Libsd.dup th fd

(* ---- socket options ---- *)

type sockopt =
  | SO_SNDBUF
  | SO_RCVBUF
  | SO_REUSEADDR
  | SO_KEEPALIVE
  | TCP_NODELAY
  | SO_ERROR

(* The options applications commonly set.  Several are structurally
   meaningless on SocksDirect and accepted as no-ops for compatibility:
   TCP_NODELAY (there is no Nagle — adaptive batching is transparent and
   latency-neutral on idle links), SO_KEEPALIVE (peer liveness comes from
   the monitor), SO_REUSEADDR (ports are monitor-managed). *)
let setsockopt th fd opt value =
  Proc.sleep_ns 15;
  match (Libsd.lookup th fd, opt) with
  | Libsd.U s, (SO_SNDBUF | SO_RCVBUF) ->
    if value <= 0 then invalid_arg "setsockopt: buffer size must be positive";
    (* Ring sizes are fixed at queue setup; remember the request so
       getsockopt round-trips, as Linux does (it doubles, we don't). *)
    s.Sock.requested_bufsize <- Some value
  | Libsd.U _, (SO_REUSEADDR | SO_KEEPALIVE | TCP_NODELAY) -> ()
  | Libsd.U _, SO_ERROR -> invalid_arg "setsockopt: SO_ERROR is read-only"
  | (Libsd.K _ | Libsd.Ep _), _ -> ()

let getsockopt th fd opt =
  Proc.sleep_ns 15;
  match (Libsd.lookup th fd, opt) with
  | Libsd.U s, (SO_SNDBUF | SO_RCVBUF) -> (
    match s.Sock.requested_bufsize with
    | Some v -> v
    | None -> Libsd.default_config.Libsd.ring_size)
  | Libsd.U _, (SO_REUSEADDR | SO_KEEPALIVE) -> 1
  | Libsd.U _, TCP_NODELAY -> 1
  | Libsd.U s, SO_ERROR -> if s.Sock.state = Sock.Shut then 104 (* ECONNRESET *) else 0
  | (Libsd.K _ | Libsd.Ep _), _ -> 0

(* ---- getpeername / getsockname ---- *)

let getsockname th fd =
  match Libsd.lookup th fd with
  | Libsd.U s -> (Sds_transport.Host.id s.Sock.host, s.Sock.local_port)
  | Libsd.K _ | Libsd.Ep _ -> raise (Not_supported "getsockname on kernel fd")

let getpeername th fd =
  match Libsd.lookup th fd with
  | Libsd.U s ->
    if s.Sock.state <> Sock.Established then invalid_arg "getpeername: not connected";
    (s.Sock.peer_host, s.Sock.peer_port)
  | Libsd.K _ | Libsd.Ep _ -> raise (Not_supported "getpeername on kernel fd")
