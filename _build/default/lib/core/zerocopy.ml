(* Zero copy for large messages via page remapping (§4.3).

   Send: the sender obtains the (obfuscated) physical addresses of its
   page-aligned send buffer through the blessed driver, marks the pages
   shared copy-on-write, and ships the addresses in-band while the payload
   stays put.  Receive: the receiver remaps those pages into the
   application's buffer — a batched remap at map_32_pages cost instead of a
   per-byte copy — then returns foreign pages to the owner's pool once the
   buffer is reused.

   The crossover is the paper's: remapping one page costs more than copying
   it, so only sends/recvs of at least [threshold] = 16 KiB take this path. *)

open Sds_sim
open Sds_vm
module Msg = Sds_transport.Msg

let threshold = 16 * 1024

(* Owner-uid -> pool, for the cross-process page-return protocol. *)
let pools : (int, Pool.t) Hashtbl.t = Hashtbl.create 16

let register_pool ~uid pool = Hashtbl.replace pools uid pool
let unregister_pool ~uid = Hashtbl.remove pools uid

(* Sender side: pin + export pages and build the page-list message.  Charges
   one kernel crossing for the driver call plus a small per-page bookkeeping
   cost.

   Ownership: the steady state of the paper's protocol is a transfer — the
   sender's virtual buffer promptly gets fresh pool pages on its next reuse
   (COW remap) while the physical pages travel to the receiver and come back
   to the sender's pool when the receiver's buffer is overwritten.  The data
   path models that steady state directly; the COW machinery itself is
   exercised through [Space.write] (see the vm tests). *)
let send_pages ~cost ~space ~src ~off ~len =
  let buf = Space.buffer_of_bytes space src ~off ~len in
  let pages = Array.length buf.Space.pages in
  Array.iter Page.pin buf.Space.pages;
  Proc.sleep_ns (Cost.syscall cost + (pages * 20));
  Msg.make (Msg.Pages (buf.Space.pages, len))

(* Receiver side: remap the pages into the application buffer (charged), copy
   the content for the caller (free in simulated time — the mapping makes it
   the same memory), then unmap and run the page-return protocol. *)
let recv_pages ~cost ~space ~engine pages ~len ~dst ~dst_off =
  let buf = Space.map_received space pages ~len in
  Proc.sleep_ns (Cost.remap_cost cost len);
  Space.read buf ~dst ~dst_off;
  let foreign = Space.unmap space buf in
  (* Return foreign pages to their owner's pool after one message hop. *)
  if foreign <> [] then
    Engine.schedule engine ~delay:cost.Cost.cache_migration (fun () ->
        List.iter
          (fun (owner, page) ->
            Page.unpin page;
            match Hashtbl.find_opt pools owner with
            | Some pool -> Pool.take_back pool page
            | None -> ())
          foreign)
