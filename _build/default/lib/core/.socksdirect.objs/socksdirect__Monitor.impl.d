lib/core/monitor.ml: Cost Engine Fmt Hashtbl Host List Logs Msg Nic Proc Queue Sds_kernel Sds_sim Sds_transport Shm_chan Sock Waitq
