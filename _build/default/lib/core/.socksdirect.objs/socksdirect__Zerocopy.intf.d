lib/core/zerocopy.mli: Bytes Cost Engine Sds_sim Sds_transport Sds_vm
