lib/core/libsd.ml: Bytes Cost Cpu Effect Engine Fmt Hashtbl Host List Logs Monitor Msg Nic Option Proc Queue Sds_kernel Sds_sim Sds_transport Sds_vm Shm_chan Sock Token Waitq Zerocopy
