lib/core/monitor.mli: Cost Host Msg Queue Sds_kernel Sds_sim Sds_transport Sock Waitq
