lib/core/shim.ml: Libsd Proc Sds_kernel Sds_sim Sds_transport Sock
