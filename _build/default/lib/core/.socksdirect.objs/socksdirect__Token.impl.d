lib/core/token.ml: Cost Fun Proc Sds_sim Waitq
