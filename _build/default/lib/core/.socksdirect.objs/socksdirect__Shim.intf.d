lib/core/shim.mli: Bytes Libsd
