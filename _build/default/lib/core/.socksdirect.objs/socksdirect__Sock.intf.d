lib/core/sock.mli: Bytes Cost Host Msg Queue Sds_kernel Sds_sim Sds_transport Shm_chan Token Waitq
