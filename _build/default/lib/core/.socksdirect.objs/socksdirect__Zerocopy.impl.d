lib/core/zerocopy.ml: Array Cost Engine Hashtbl List Page Pool Proc Sds_sim Sds_transport Sds_vm Space
