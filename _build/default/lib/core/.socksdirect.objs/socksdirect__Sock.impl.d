lib/core/sock.ml: Bytes Cost Host List Msg Queue Sds_kernel Sds_sim Sds_transport Shm_chan Token Waitq
