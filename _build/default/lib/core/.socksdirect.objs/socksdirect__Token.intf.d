lib/core/token.mli: Cost Sds_sim
