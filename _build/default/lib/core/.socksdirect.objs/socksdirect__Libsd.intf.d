lib/core/libsd.mli: Bytes Host Monitor Sds_kernel Sds_transport Sds_vm Sock
