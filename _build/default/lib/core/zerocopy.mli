(** Zero copy for large messages via page remapping (§4.3).

    Only sends/recvs of at least [threshold] bytes take this path: remapping
    one page costs more than copying it, so the crossover sits at 16 KiB. *)

open Sds_sim

val threshold : int
(** 16 KiB. *)

val register_pool : uid:int -> Sds_vm.Pool.t -> unit
(** Register a process's page pool for the cross-process return protocol. *)

val unregister_pool : uid:int -> unit

val send_pages :
  cost:Cost.t -> space:Sds_vm.Space.t -> src:Bytes.t -> off:int -> len:int -> Sds_transport.Msg.t
(** Pin and export the buffer's pages and build the page-list message.
    Charges one kernel crossing plus per-page bookkeeping. *)

val recv_pages :
  cost:Cost.t ->
  space:Sds_vm.Space.t ->
  engine:Engine.t ->
  Sds_vm.Page.t array ->
  len:int ->
  dst:Bytes.t ->
  dst_off:int ->
  unit
(** Remap received pages into the application buffer (charged at the batched
    remap rate), then unmap and return foreign pages to their owner's pool. *)
