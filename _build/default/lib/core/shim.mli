(** The glibc-interposition surface (§3): uniform FD-based calls that work
    the same on SocksDirect sockets, kernel fallback connections, pipe ends
    and plain files, mirroring what the LD_PRELOADed libsd intercepts. *)

exception Not_supported of string

val open_file : Libsd.thread -> string -> int
(** open(2) on a regular file; kernel-backed, visible in the remapping
    table. *)

val read : Libsd.thread -> int -> Bytes.t -> off:int -> len:int -> int
val write : Libsd.thread -> int -> Bytes.t -> off:int -> len:int -> int
val close : Libsd.thread -> int -> unit

type fcntl_cmd =
  | F_GETFL
  | F_SETFL of { nonblock : bool }
  | F_DUPFD

val fcntl : Libsd.thread -> int -> fcntl_cmd -> int

type sockopt =
  | SO_SNDBUF
  | SO_RCVBUF
  | SO_REUSEADDR
  | SO_KEEPALIVE
  | TCP_NODELAY
  | SO_ERROR

val setsockopt : Libsd.thread -> int -> sockopt -> int -> unit
(** Buffer-size options are recorded for round-tripping; options that are
    structurally meaningless on SocksDirect (TCP_NODELAY, SO_KEEPALIVE,
    SO_REUSEADDR) are accepted as no-ops for compatibility. *)

val getsockopt : Libsd.thread -> int -> sockopt -> int

val getsockname : Libsd.thread -> int -> int * int
(** [(host id, port)]. *)

val getpeername : Libsd.thread -> int -> int * int
