(** Token-based socket sharing (§4.1).

    Each socket-queue direction has one token; only the holder may operate,
    so the common case runs with no lock.  Non-holders take over through the
    monitor (FIFO waiting list; deadlock- and starvation-free). *)

open Sds_sim

type t

val create : cost:Cost.t -> holder:int -> t

val holder : t -> int option
val takeovers : t -> int

val acquire : t -> tid:int -> unit
(** Zero-cost when [tid] already holds the token; otherwise one monitor
    round trip (the ~0.6 us take-over), queueing FIFO behind a busy holder. *)

val with_held : t -> tid:int -> (unit -> 'a) -> 'a
(** Run [f] holding the token, with the busy window marked so a take-over
    never interleaves mid-message. *)

val on_fork : t -> parent_tid:int -> unit
(** The parent inherits the token; the child starts inactive (§4.1.2). *)
