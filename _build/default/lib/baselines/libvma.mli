(** LibVMA baseline (§2.2, Table 3/4): a user-space TCP/IP stack with
    per-packet protocol processing, per-FD locks, and NIC queues shared by
    all threads of a process behind a lock whose contention collapses
    aggregate throughput beyond one thread (Figure 9).  Intra-host
    connections fall back to the kernel stack.

    All blocking calls must run inside a simulated proc. *)

open Sds_sim
open Sds_transport

type stack = {
  host : Host.t;
  cost : Cost.t;
  mutable active_threads : int;
}

type conn
type listener

val reset : unit -> unit
val stack_for : Host.t -> stack

val set_threads : stack -> int -> unit
(** Number of threads sharing the NIC queues (drives the contention model). *)

val contention_factor : stack -> int
val sender_cost : stack -> int -> int
val receiver_cost : stack -> int -> int

val listen : Host.t -> port:int -> listener
val connect : Host.t -> dst:Host.t -> port:int -> conn
val accept : listener -> conn

val send : conn -> Bytes.t -> off:int -> len:int -> int
val recv : conn -> Bytes.t -> off:int -> len:int -> int
val close : conn -> unit
