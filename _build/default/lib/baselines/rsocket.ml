(* RSocket baseline (§2.2, Table 3/4).

   Socket-to-RDMA translation with two-sided verbs: every send allocates an
   internal buffer and copies the payload on BOTH sides, every operation
   takes the per-FD lock, and intra-host traffic hairpins through the NIC
   (PCIe round trip) instead of using shared memory.  Connection setup runs
   the slow rsocket handshake plus QP creation.  No epoll, no usable fork —
   modelled as exceptions, matching the compatibility matrix. *)

open Sds_sim
open Sds_transport

exception Not_supported of string

type conn = {
  host : Host.t;
  cost : Cost.t;
  peer_host : Host.t;
  mutable qp : Nic.qp option;  (** None for intra-host hairpin *)
  incoming : Msg.t Queue.t;
  rx_wq : Waitq.t;
  mutable peer : conn option;
  mutable closed : bool;
  mutable in_flight : int;  (** sends not yet delivered, for graceful close *)
  mutable partial : (Bytes.t * int) option;
}

type listener = { l_backlog : conn Queue.t; l_wq : Waitq.t; l_host : Host.t }

(* Global (stack-private) port registry keyed by host id * port. *)
let listeners : (int * int, listener) Hashtbl.t = Hashtbl.create 16

(* RSocket's internal buffer manager is shared by all threads of a host and
   serializes allocations — the reason its aggregate throughput peaks around
   24-33 M msg/s in the paper's Figure 9 regardless of core count. *)
let allocators : (int, int ref) Hashtbl.t = Hashtbl.create 8
let allocator_grain_ns = 30

let reset () =
  Hashtbl.reset listeners;
  Hashtbl.reset allocators

let allocator_for host =
  match Hashtbl.find_opt allocators (Host.id host) with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace allocators (Host.id host) r;
    r

(* Serialize on the shared allocator: returns the queueing delay. *)
let allocator_delay host =
  let free_at = allocator_for host in
  let now = Engine.now host.Host.engine in
  let start = max now !free_at in
  free_at := start + allocator_grain_ns;
  start + allocator_grain_ns - now

(* Two-sided receive path: the NIC (or hairpin) delivers into [incoming]. *)
let deliver conn msg =
  Queue.push msg conn.incoming;
  Waitq.signal conn.rx_wq

let listen host ~port =
  let l = { l_backlog = Queue.create (); l_wq = Waitq.create (); l_host = host } in
  Hashtbl.replace listeners (Host.id host, port) l;
  l

let make_conn host peer_host =
  {
    host;
    cost = host.Host.cost;
    peer_host;
    qp = None;
    incoming = Queue.create ();
    rx_wq = Waitq.create ();
    peer = None;
    closed = false;
    in_flight = 0;
    partial = None;
  }

let connect host ~dst ~port =
  match Hashtbl.find_opt listeners (Host.id dst, port) with
  | None -> failwith "rsocket: connection refused"
  | Some l ->
    let cost = host.Host.cost in
    let intra = Host.same_host host dst in
    (* rsocket handshake + QP creation (Table 4 per-connection). *)
    Proc.sleep_ns
      (if intra then cost.Cost.rsocket_conn_setup_intra
       else cost.Cost.tcp_handshake_rsocket);
    let c = make_conn host dst and s = make_conn dst host in
    c.peer <- Some s;
    s.peer <- Some c;
    if not intra then begin
      let nic_c = Host.nic host and nic_s = Host.nic dst in
      let cq_c = Nic.create_cq nic_c and cq_s = Nic.create_cq nic_s in
      let qc, qs = Nic.connect_qps nic_c nic_s ~scq_a:cq_c ~rcq_a:cq_c ~scq_b:cq_s ~rcq_b:cq_s in
      (* A message sent on one QP lands through the peer QP's sink: sends on
         [qc] are delivered to the server conn and vice versa. *)
      Nic.set_remote_sink qs (fun msg ->
          s.in_flight <- s.in_flight - 1;
          deliver s msg);
      Nic.set_remote_sink qc (fun msg ->
          c.in_flight <- c.in_flight - 1;
          deliver c msg);
      c.qp <- Some qc;
      s.qp <- Some qs
    end;
    Queue.push s l.l_backlog;
    Waitq.signal l.l_wq;
    c

let rec accept l =
  match Queue.take_opt l.l_backlog with
  | Some c -> c
  | None ->
    (match Waitq.wait l.l_wq with _ -> ());
    accept l

(* Per-side CPU charge: FD lock + buffer allocate/manage + copy. *)
let side_cost cost len =
  cost.Cost.fd_lock_rsocket + (cost.Cost.rsocket_buffer_mgmt / 2) + Cost.copy_cost cost len

let mtu_chunk = 8 * 1024

let rec send conn buf ~off ~len =
  if conn.closed then raise (Not_supported "send on closed rsocket");
  if len = 0 then 0
  else begin
    let chunk = min len mtu_chunk in
    let cost = conn.cost in
    Proc.sleep_ns (side_cost cost chunk + allocator_delay conn.host);
    let msg = Msg.data (Bytes.sub buf off chunk) in
    let peer = match conn.peer with Some p -> p | None -> failwith "rsocket: no peer" in
    (match conn.qp with
    | Some qp ->
      peer.in_flight <- peer.in_flight + 1;
      Nic.send_2sided qp msg
    | None ->
      (* Intra-host: PCIe hairpin through the NIC. *)
      peer.in_flight <- peer.in_flight + 1;
      Nic.hairpin (Host.nic conn.host) msg ~deliver:(fun m ->
          peer.in_flight <- peer.in_flight - 1;
          deliver peer m));
    if chunk < len then chunk + send conn buf ~off:(off + chunk) ~len:(len - chunk) else chunk
  end

let rec recv conn buf ~off ~len =
  match conn.partial with
  | Some (b, consumed) ->
    let avail = Bytes.length b - consumed in
    let take = min len avail in
    Bytes.blit b consumed buf off take;
    conn.partial <- (if take = avail then None else Some (b, consumed + take));
    take
  | None -> (
    match Queue.take_opt conn.incoming with
    | Some msg ->
      let b = Msg.to_bytes msg in
      let plen = Bytes.length b in
      Proc.sleep_ns (side_cost conn.cost plen);
      let take = min len plen in
      Bytes.blit b 0 buf off take;
      if take < plen then conn.partial <- Some (b, take);
      take
    | None ->
      if conn.closed && conn.in_flight = 0 then 0
      else begin
        (match Waitq.wait conn.rx_wq with _ -> ());
        recv conn buf ~off ~len
      end)

let close conn =
  conn.closed <- true;
  (match conn.peer with
  | Some p ->
    p.closed <- true;
    Waitq.broadcast p.rx_wq
  | None -> ());
  match conn.qp with
  | Some qp -> Nic.destroy_qp qp
  | None -> ()

(* The compatibility gaps the paper's Table 3 records. *)
let epoll () = raise (Not_supported "rsocket: epoll not supported")
let fork () = raise (Not_supported "rsocket: fork not supported")
