(* Table 3: the compatibility / isolation / removed-overhead matrix for the
   ten socket systems the paper compares.  Encoded as data so the bench
   harness can regenerate the table, and so tests can assert that the three
   executable stacks in this repo (Linux model, RSocket model, SocksDirect)
   actually exhibit the claimed behaviours. *)

type support = Yes | No | Partial of string

type system = {
  name : string;
  category : string;
  (* compatibility *)
  transparent : support;
  epoll : support;
  tcp_peers : support;  (** compatible with regular TCP peers *)
  intra_host : support;
  multi_listen : support;  (** multiple applications listen on a port *)
  full_fork : support;
  live_migration : support;
  (* isolation *)
  access_control : string;  (** "Kernel" | "Daemon" | "-" *)
  container_isolation : support;
  qos : string;
  (* removed overheads *)
  kernel_crossing : support;
  fd_locks : support;
  transport_removed : support;
  buffer_mgmt : support;
  io_multiplexing : support;
  process_wakeup : support;
  zero_copy : support;
  fd_alloc : support;
  conn_dispatch : support;
}

let base =
  {
    name = ""; category = ""; transparent = No; epoll = No; tcp_peers = No; intra_host = No;
    multi_listen = No; full_fork = No; live_migration = No; access_control = "-";
    container_isolation = No; qos = "-"; kernel_crossing = No; fd_locks = No;
    transport_removed = No; buffer_mgmt = No; io_multiplexing = No; process_wakeup = No;
    zero_copy = No; fd_alloc = No; conn_dispatch = No;
  }

let systems =
  [
    { base with
      name = "FastSocket"; category = "Kernel optimization"; transparent = Yes; epoll = Yes;
      tcp_peers = Yes; intra_host = Yes; multi_listen = Yes; full_fork = Yes; live_migration = Yes;
      access_control = "Kernel"; container_isolation = Yes; qos = "Kernel";
      kernel_crossing = No; io_multiplexing = Partial "improved"; conn_dispatch = Yes };
    { base with
      name = "MegaPipe/StackMap"; category = "Kernel optimization"; epoll = Yes; tcp_peers = Yes;
      intra_host = Yes; multi_listen = Yes; access_control = "Kernel"; container_isolation = Yes;
      qos = "Kernel"; kernel_crossing = Partial "batched"; zero_copy = Yes; fd_alloc = Yes;
      conn_dispatch = Yes };
    { base with
      name = "IX"; category = "User-space TCP/IP"; epoll = Yes; tcp_peers = Yes;
      access_control = "Kernel"; container_isolation = Yes; qos = "Kernel";
      kernel_crossing = Partial "batched"; transport_removed = No; io_multiplexing = Yes;
      conn_dispatch = Yes };
    { base with
      name = "Arrakis"; category = "User-space TCP/IP"; epoll = Yes; tcp_peers = Yes;
      access_control = "Kernel"; container_isolation = Yes; qos = "NIC"; kernel_crossing = Yes;
      io_multiplexing = Yes; conn_dispatch = Yes };
    { base with
      name = "SandStorm/mTCP"; category = "User-space TCP/IP"; tcp_peers = Yes; qos = "NIC";
      kernel_crossing = Yes; io_multiplexing = Yes; fd_alloc = Yes; conn_dispatch = Yes };
    { base with
      name = "LibVMA"; category = "User-space TCP/IP"; transparent = Yes; epoll = Yes;
      tcp_peers = Yes; qos = "NIC"; kernel_crossing = Yes; io_multiplexing = Yes };
    { base with
      name = "OpenOnload"; category = "User-space TCP/IP"; transparent = Yes; epoll = Yes;
      tcp_peers = Yes; intra_host = Yes; qos = "NIC"; kernel_crossing = Yes;
      io_multiplexing = Yes };
    { base with
      name = "RSocket/SDP"; category = "Offload to RDMA NIC"; transparent = Yes;
      access_control = "-"; qos = "NIC"; kernel_crossing = Yes; transport_removed = Yes;
      io_multiplexing = Yes; process_wakeup = No };
    { base with
      name = "FreeFlow"; category = "Offload to RDMA NIC"; transparent = Yes; intra_host = Yes;
      access_control = "Daemon"; container_isolation = Yes; qos = "Daemon";
      kernel_crossing = Yes; transport_removed = Yes; io_multiplexing = Yes };
    {
      name = "SocksDirect"; category = "Offload to RDMA NIC"; transparent = Yes; epoll = Yes;
      tcp_peers = Yes; intra_host = Yes; multi_listen = Yes; full_fork = Yes;
      live_migration = Yes; access_control = "Daemon"; container_isolation = Yes; qos = "NIC";
      kernel_crossing = Partial "<16KB msg"; fd_locks = Yes; transport_removed = Yes;
      buffer_mgmt = Yes; io_multiplexing = Yes; process_wakeup = Yes;
      zero_copy = Partial ">=16KB msg"; fd_alloc = Yes; conn_dispatch = Yes };
  ]

let find name = List.find_opt (fun s -> s.name = name) systems

let string_of_support = function
  | Yes -> "yes"
  | No -> "-"
  | Partial s -> s

let pp_row ppf s =
  Fmt.pf ppf "%-18s %-22s epoll:%-8s tcp:%-3s intra:%-3s fork:%-3s migr:%-3s acl:%-6s zc:%s"
    s.name s.category
    (string_of_support s.epoll) (string_of_support s.tcp_peers) (string_of_support s.intra_host)
    (string_of_support s.full_fork) (string_of_support s.live_migration) s.access_control
    (string_of_support s.zero_copy)
