(** RSocket baseline (§2.2, Table 3/4): socket-to-RDMA translation with
    two-sided verbs, per-FD locks, buffer copies on both sides, a shared
    buffer manager that serializes allocations, and intra-host traffic
    hairpinned through the NIC.  No epoll, no fork — the compatibility gaps
    Table 3 records.

    All blocking calls must run inside a simulated proc. *)

open Sds_transport

exception Not_supported of string

type conn
type listener

val reset : unit -> unit
(** Clear the stack-global registries (between experiment worlds). *)

val listen : Host.t -> port:int -> listener
val connect : Host.t -> dst:Host.t -> port:int -> conn
val accept : listener -> conn

val send : conn -> Bytes.t -> off:int -> len:int -> int
val recv : conn -> Bytes.t -> off:int -> len:int -> int
val close : conn -> unit

val epoll : unit -> 'a
(** Raises {!Not_supported}. *)

val fork : unit -> 'a
(** Raises {!Not_supported}. *)
