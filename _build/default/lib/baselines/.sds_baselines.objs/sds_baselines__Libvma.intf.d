lib/baselines/libvma.mli: Bytes Cost Host Sds_sim Sds_transport
