lib/baselines/rsocket.ml: Bytes Cost Engine Hashtbl Host Msg Nic Proc Queue Sds_sim Sds_transport Waitq
