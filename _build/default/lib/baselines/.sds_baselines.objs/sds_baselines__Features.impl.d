lib/baselines/features.ml: Fmt List
