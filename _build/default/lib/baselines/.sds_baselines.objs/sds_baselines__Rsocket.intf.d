lib/baselines/rsocket.mli: Bytes Host Sds_transport
