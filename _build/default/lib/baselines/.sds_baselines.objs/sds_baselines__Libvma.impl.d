lib/baselines/libvma.ml: Bytes Cost Hashtbl Host Msg Nic Proc Queue Sds_kernel Sds_sim Sds_transport Waitq
