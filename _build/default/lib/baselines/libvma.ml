(* LibVMA baseline (§2.2, Table 3/4).

   A user-space TCP/IP stack over kernel-bypass packet I/O: per-packet
   TCP/IP processing and packet handling in user space, batched doorbells,
   per-FD locking, and — the property the paper highlights in Figure 9 —
   NIC queues shared by all threads of a process, protected by locks whose
   contention collapses throughput beyond one thread (measured in the paper
   as 1/4 with two threads and 1/10 with three or more).

   Intra-host connections fall back to the kernel stack (Table 3: LibVMA has
   no intra-host path of its own). *)

open Sds_sim
open Sds_transport
module Kernel = Sds_kernel.Kernel

type stack = {
  host : Host.t;
  cost : Cost.t;
  mutable active_threads : int;  (** threads sharing the NIC queues *)
}

type conn = {
  vc_stack : stack;
  mutable qp : Nic.qp option;  (** None: kernel fallback *)
  mutable kconn : (Kernel.process * int) option;
  incoming : Msg.t Queue.t;
  rx_wq : Waitq.t;
  mutable peer : conn option;
  mutable closed : bool;
  mutable in_flight : int;
  mutable partial : (Bytes.t * int) option;
}

type listener = { vl_backlog : conn Queue.t; vl_wq : Waitq.t; vl_stack : stack }

let listeners : (int * int, listener) Hashtbl.t = Hashtbl.create 16
let stacks : (int, stack) Hashtbl.t = Hashtbl.create 8

let reset () =
  Hashtbl.reset listeners;
  Hashtbl.reset stacks

let stack_for host =
  match Hashtbl.find_opt stacks (Host.id host) with
  | Some s -> s
  | None ->
    let s = { host; cost = host.Host.cost; active_threads = 1 } in
    Hashtbl.replace stacks (Host.id host) s;
    s

let set_threads stack n = stack.active_threads <- max 1 n

(* The shared-NIC-queue lock: the paper measures throughput falling to 1/4
   with two threads and 1/10 with three or more.  With T threads each
   message pays a contention multiplier that reproduces those aggregates. *)
let contention_factor stack =
  match stack.active_threads with
  | 1 -> 1
  | 2 -> 8
  | _ -> 10 * stack.active_threads

let listen host ~port =
  let l = { vl_backlog = Queue.create (); vl_wq = Waitq.create (); vl_stack = stack_for host } in
  Hashtbl.replace listeners (Host.id host, port) l;
  l

let make_conn stack =
  { vc_stack = stack; qp = None; kconn = None; incoming = Queue.create (); rx_wq = Waitq.create ();
    peer = None; closed = false; in_flight = 0; partial = None }

let deliver conn msg =
  Queue.push msg conn.incoming;
  Waitq.signal conn.rx_wq

let connect host ~dst ~port =
  let stack = stack_for host in
  let cost = stack.cost in
  if Host.same_host host dst then begin
    (* Kernel fallback for intra-host. *)
    match Hashtbl.find_opt listeners (Host.id dst, port) with
    | None -> failwith "libvma: connection refused"
    | Some l ->
      Proc.sleep_ns cost.Cost.vma_conn_setup_intra;
      let kernel = Kernel.for_host host in
      let kp = Kernel.spawn_process kernel () in
      (* LibVMA's intra-host path IS the kernel TCP stack (Table 3). *)
      let fd_a, fd_b =
        Kernel.unix_socketpair ~profile:(Sds_kernel.Kstream.tcp_intra_profile cost) kp
      in
      let c = make_conn stack and s = make_conn l.vl_stack in
      c.kconn <- Some (kp, fd_a);
      s.kconn <- Some (kp, fd_b);
      c.peer <- Some s;
      s.peer <- Some c;
      Queue.push s l.vl_backlog;
      Waitq.signal l.vl_wq;
      c
  end
  else begin
    match Hashtbl.find_opt listeners (Host.id dst, port) with
    | None -> failwith "libvma: connection refused"
    | Some l ->
      (* User-space TCP handshake over the NIC. *)
      Proc.sleep_ns cost.Cost.tcp_handshake;
      let c = make_conn stack and s = make_conn l.vl_stack in
      c.peer <- Some s;
      s.peer <- Some c;
      let nic_c = Host.nic host and nic_s = Host.nic dst in
      let cq_c = Nic.create_cq nic_c and cq_s = Nic.create_cq nic_s in
      let qc, qs = Nic.connect_qps ~charge_setup:false nic_c nic_s ~scq_a:cq_c ~rcq_a:cq_c ~scq_b:cq_s ~rcq_b:cq_s in
      Nic.set_remote_sink qs (fun msg ->
          s.in_flight <- s.in_flight - 1;
          deliver s msg);
      Nic.set_remote_sink qc (fun msg ->
          c.in_flight <- c.in_flight - 1;
          deliver c msg);
      c.qp <- Some qc;
      s.qp <- Some qs;
      Queue.push s l.vl_backlog;
      Waitq.signal l.vl_wq;
      c
  end

let rec accept l =
  match Queue.take_opt l.vl_backlog with
  | Some c -> c
  | None ->
    (match Waitq.wait l.vl_wq with _ -> ());
    accept l

let mtu = 1448

(* Per-packet sender CPU: FD lock, user-space TCP/IP, half the buffer
   management, plus the copy — all serialized behind the shared NIC queue
   lock, so the whole path stretches by the contention factor. *)
let sender_cost stack len =
  let c = stack.cost in
  (c.Cost.fd_lock_vma + c.Cost.vma_transport + (c.Cost.vma_buffer_mgmt / 2)
  + Cost.copy_cost c len)
  * contention_factor stack

let receiver_cost stack len =
  let c = stack.cost in
  c.Cost.fd_lock_vma + c.Cost.vma_packet_proc + (c.Cost.vma_buffer_mgmt / 2) + Cost.copy_cost c len

let rec send conn buf ~off ~len =
  if conn.closed then failwith "libvma: send on closed connection";
  match conn.kconn with
  | Some (kp, fd) -> Kernel.send kp fd buf ~off ~len
  | None ->
    if len = 0 then 0
    else begin
      let stack = conn.vc_stack in
      let chunk = min len mtu in
      Proc.sleep_ns (sender_cost stack chunk);
      (match conn.qp, conn.peer with
      | Some qp, Some peer ->
        peer.in_flight <- peer.in_flight + 1;
        Nic.send_2sided qp (Msg.data (Bytes.sub buf off chunk))
      | _ -> failwith "libvma: not connected");
      if chunk < len then chunk + send conn buf ~off:(off + chunk) ~len:(len - chunk) else chunk
    end

let rec recv conn buf ~off ~len =
  match conn.kconn with
  | Some (kp, fd) -> Kernel.recv kp fd buf ~off ~len
  | None -> (
    match conn.partial with
    | Some (b, consumed) ->
      let avail = Bytes.length b - consumed in
      let take = min len avail in
      Bytes.blit b consumed buf off take;
      conn.partial <- (if take = avail then None else Some (b, consumed + take));
      take
    | None -> (
      match Queue.take_opt conn.incoming with
      | Some msg ->
        let b = Msg.to_bytes msg in
        let plen = Bytes.length b in
        Proc.sleep_ns (receiver_cost conn.vc_stack plen);
        let take = min len plen in
        Bytes.blit b 0 buf off take;
        if take < plen then conn.partial <- Some (b, take);
        take
      | None ->
        if conn.closed && conn.in_flight = 0 then 0
        else begin
          (match Waitq.wait conn.rx_wq with _ -> ());
          recv conn buf ~off ~len
        end))

let close conn =
  conn.closed <- true;
  (match conn.peer with
  | Some p ->
    p.closed <- true;
    Waitq.broadcast p.rx_wq
  | None -> ());
  (match conn.kconn with Some (kp, fd) -> Kernel.close kp fd | None -> ());
  match conn.qp with Some qp -> Nic.destroy_qp qp | None -> ()
