lib/workloads/dist.ml: Array Rng Sds_sim
