lib/workloads/dist.mli: Rng Sds_sim
