(* Workload distributions for the evaluation harness.

   Message sizes follow either simple synthetic shapes or the wide-area mix
   the paper cites ([70] Thompson et al.: most packets are small, a heavy
   tail carries most bytes).  Key popularity for KV workloads is Zipfian,
   arrivals are Poisson — the standard datacenter modelling toolkit. *)

open Sds_sim

type size_dist =
  | Fixed of int
  | Uniform of int * int  (** inclusive bounds *)
  | Internet_mix
      (** 40% tiny (40-64 B ACK-like), 30% small (128-576 B), 20% MTU-ish
          (1000-1500 B), 10% bulk (4-64 KiB) *)
  | Bimodal of { small : int; large : int; large_percent : int }

let sample_size rng = function
  | Fixed n -> n
  | Uniform (a, b) ->
    if b < a then invalid_arg "Dist.sample_size: empty range";
    a + Rng.int rng (b - a + 1)
  | Internet_mix ->
    let r = Rng.int rng 100 in
    if r < 40 then 40 + Rng.int rng 25
    else if r < 70 then 128 + Rng.int rng 449
    else if r < 90 then 1000 + Rng.int rng 501
    else 4096 + Rng.int rng (65536 - 4096)
  | Bimodal { small; large; large_percent } ->
    if Rng.int rng 100 < large_percent then large else small

let mean_size rng dist ~samples =
  let total = ref 0 in
  for _ = 1 to samples do
    total := !total + sample_size rng dist
  done;
  float_of_int !total /. float_of_int samples

(* Zipf(s) over [1..n] by inverse-CDF on a precomputed table. *)
type zipf = { cdf : float array }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  { cdf }

(* Sample a rank in [0..n-1]; rank 0 is the hottest key. *)
let sample_zipf rng z =
  let u = Rng.float rng in
  let n = Array.length z.cdf in
  (* binary search for the first cdf >= u *)
  let rec bs lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if z.cdf.(mid) >= u then bs lo mid else bs (mid + 1) hi
  in
  bs 0 (n - 1)

(* Poisson arrivals: exponential gap for a target rate (events/second),
   in integer nanoseconds (>= 1). *)
let poisson_gap_ns rng ~rate_per_sec =
  if rate_per_sec <= 0.0 then invalid_arg "Dist.poisson_gap_ns: rate must be positive";
  let mean_ns = 1e9 /. rate_per_sec in
  max 1 (int_of_float (Rng.exponential rng ~mean:mean_ns))
