(** Workload distributions: message sizes (including the wide-area mix the
    paper cites), Zipf key popularity, Poisson arrivals.  All sampling is
    from explicit deterministic RNG streams. *)

open Sds_sim

type size_dist =
  | Fixed of int
  | Uniform of int * int  (** inclusive bounds *)
  | Internet_mix
      (** 40% tiny (40-64 B), 30% small (128-576 B), 20% MTU-ish
          (1000-1500 B), 10% bulk (4-64 KiB) *)
  | Bimodal of { small : int; large : int; large_percent : int }

val sample_size : Rng.t -> size_dist -> int
val mean_size : Rng.t -> size_dist -> samples:int -> float

type zipf

val zipf : n:int -> s:float -> zipf
(** Zipf(s) over ranks [0..n-1] (rank 0 hottest). *)

val sample_zipf : Rng.t -> zipf -> int

val poisson_gap_ns : Rng.t -> rate_per_sec:float -> int
(** Exponential inter-arrival gap for the given rate, >= 1 ns. *)
