(* Figure 9: aggregate 8-byte message throughput vs number of core pairs,
   intra-host (9a) and inter-host (9b).

   Each point: N sender threads (one per core) streaming to N receiver
   threads over N connections.  LibVMA additionally suffers its shared-NIC-
   queue lock contention, which is set from the pair count. *)

open Common

let core_counts = [ 1; 2; 4; 8; 12; 16 ]

type stack = (module Sds_apps.Sock_api.S)

let point (stack : stack) ~intra ~pairs =
  let w = make_world () in
  let h1 = add_host w in
  let client_host, server_host = if intra then (h1, h1) else (h1, add_host w) in
  (* LibVMA: threads of one process share NIC queues behind a lock. *)
  let (module Api) = stack in
  if Api.name = "LibVMA" then
    Sds_baselines.Libvma.set_threads (Sds_baselines.Libvma.stack_for client_host) pairs;
  stream_tput stack w ~client_host ~server_host ~size:8 ~pairs ~warmup_ns:500_000
    ~window_ns:2_000_000

let stacks : stack list =
  [
    (module Sds_apps.Sock_api.Sds);
    (module Sds_apps.Sock_api.Linux);
    (module Sds_apps.Sock_api.Libvma);
    (module Sds_apps.Sock_api.Rsocket);
    (module Raw_stacks.Raw_rdma);
    (module Sds_apps.Sock_api.Sds_unopt);
  ]

let sweep ~intra =
  List.map
    (fun pairs ->
      ( pairs,
        List.map
          (fun stack ->
            let (module Api : Sds_apps.Sock_api.S) = stack in
            (* The raw RDMA line only exists inter-host. *)
            if intra && Api.name = "RDMA" then (Api.name, nan)
            else (Api.name, mops (point stack ~intra ~pairs)))
          stacks ))
    core_counts

let print_sweep ~title rows =
  header title;
  (match rows with
  | (_, vs) :: _ -> tsv_row (("cores" :: List.map fst vs) @ [ "(Mmsg/s)" ])
  | [] -> ());
  List.iter
    (fun (pairs, vs) ->
      tsv_row (string_of_int pairs :: List.map (fun (_, v) -> if Float.is_nan v then "-" else f2 v) vs))
    rows

let run () =
  let intra = sweep ~intra:true in
  print_sweep ~title:"Figure 9a: intra-host 8-byte throughput vs cores" intra;
  let inter = sweep ~intra:false in
  print_sweep ~title:"Figure 9b: inter-host 8-byte throughput vs cores" inter;
  (intra, inter)
