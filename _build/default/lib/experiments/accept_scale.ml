(* Extension experiment: accept throughput of the pre-fork server as worker
   count grows — stresses the monitor's round-robin dispatch and work
   stealing (§4.5.2) under a connection storm, the control-plane complement
   to Figure 9's data-plane scaling. *)

open Sds_sim
open Common
module L = Socksdirect.Libsd
module Prefork = Sds_apps.Prefork_server

let worker_counts = [ 1; 2; 4; 8 ]
let conns_per_worker = 400

let point ~workers =
  let w = make_world () in
  let h = add_host w in
  let server = Prefork.create h ~port:9300 ~workers in
  let ready = ref false in
  let t_start = ref 0 and t_done = ref 0 in
  let completed = ref 0 in
  Prefork.start server ~engine:w.engine ~conns_per_worker ~handler:Prefork.echo_handler
    ~on_ready:(fun () -> ready := true);
  let total = workers * conns_per_worker in
  (* Several client threads so the connect side is not the bottleneck. *)
  let client_threads = max 2 workers in
  let per_client = total / client_threads in
  for c = 0 to client_threads - 1 do
    ignore
      (Proc.spawn w.engine ~name:(Fmt.str "storm%d" c) (fun () ->
           while not !ready do
             Proc.sleep_ns 1_000
           done;
           if c = 0 then t_start := Engine.now w.engine;
           let ctx = L.init h in
           let th = L.create_thread ctx ~core:(10 + c) () in
           let buf = Bytes.create 8 in
           for _ = 1 to per_client do
             let fd = L.socket th in
             L.connect th fd ~dst:h ~port:9300;
             ignore (L.send th fd (Bytes.of_string "8bytes!!") ~off:0 ~len:8);
             let got = ref 0 in
             while !got < 8 do
               let n = L.recv th fd buf ~off:!got ~len:(8 - !got) in
               if n = 0 then failwith "storm: eof";
               got := !got + n
             done;
             L.close th fd;
             incr completed;
             if !completed = per_client * client_threads then t_done := Engine.now w.engine
           done))
  done;
  Engine.run ~until:120_000_000_000 w.engine;
  if !t_done = 0 then failwith "accept_scale: storm did not finish";
  let conns = per_client * client_threads in
  let rate = float_of_int conns /. (float_of_int (!t_done - !t_start) /. 1e9) in
  let served = Prefork.served server in
  (rate, served)

let run () =
  header "Extension: pre-fork server accept throughput vs workers (dispatch + stealing)";
  tsv_row [ "workers"; "conns/s"; "per-worker spread" ];
  List.map
    (fun workers ->
      let rate, served = point ~workers in
      let spread =
        String.concat "," (Array.to_list (Array.map string_of_int served))
      in
      tsv_row [ string_of_int workers; Fmt.str "%.0f" rate; spread ];
      (workers, rate, served))
    worker_counts
