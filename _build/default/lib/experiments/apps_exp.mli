(** §5.3.2 Redis GET latency and §5.3.3 RPClib round trips. *)

val redis_point : (module Sds_apps.Sock_api.S) -> Sds_sim.Stats.summary
val run_redis : unit -> Sds_sim.Stats.summary * Sds_sim.Stats.summary

val rpc_point : (module Sds_apps.Sock_api.S) -> intra:bool -> float
(** Mean RTT in microseconds for the 1 KiB echo RPC. *)

val run_rpc : unit -> (float * float) * (float * float)
