(** Figure 11: Nginx-style HTTP request latency vs response size, remote
    generator -> proxy -> co-located upstream. *)

val sizes : int list
val point : (module Sds_apps.Sock_api.S) -> size:int -> Sds_sim.Stats.summary
val run : unit -> (int * float * float) list
(** [(size, SocksDirect us, Linux us)] rows. *)
