(** Figure 12: NF pipeline throughput vs number of NFs (SocksDirect
    sockets, kernel pipes, kernel TCP, NetBricks-style reference). *)

val nf_counts : int list
val packets : int

val socket_pipeline : (module Sds_apps.Sock_api.S) -> stages:int -> float
(** Packets per second through a [stages]-NF chain. *)

val pipe_pipeline : stages:int -> float
val netbricks_point : stages:int -> float
val run : unit -> (int * float * float * float * float) list
