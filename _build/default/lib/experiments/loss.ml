(* Transport robustness (§6 discussion): SocksDirect inter-host performance
   over a lossy fabric, comparing the go-back-N recovery of commodity RDMA
   NICs against selective retransmission (the paper cites MELO/IRN-style
   proposals as the path to lossy-network deployments). *)

open Sds_transport
open Common

let loss_rates_ppm = [ 0; 1_000; 10_000; 50_000 ]

let point ~recovery ~ppm ~metric =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  Nic.set_loss (Host.nic h1) ~ppm ~recovery ~seed:21;
  Nic.set_loss (Host.nic h2) ~ppm ~recovery ~seed:22;
  match metric with
  | `Latency ->
    let s =
      pingpong (module Sds_apps.Sock_api.Sds) w ~client_host:h1 ~server_host:h2 ~size:8
        ~rounds:300 ~warmup:20
    in
    ns_to_us s.Sds_sim.Stats.mean_v
  | `Tput ->
    mops
      (stream_tput (module Sds_apps.Sock_api.Sds) w ~client_host:h1 ~server_host:h2 ~size:8
         ~pairs:1 ~warmup_ns:1_000_000 ~window_ns:5_000_000)

let run () =
  header "Lossy fabric: SocksDirect inter-host 8-byte RTT and throughput vs loss rate";
  tsv_row [ "loss"; "RTT go-back-N"; "RTT selective"; "Mmsg/s go-back-N"; "Mmsg/s selective" ];
  List.map
    (fun ppm ->
      let lat_g = point ~recovery:Nic.Go_back_n ~ppm ~metric:`Latency in
      let lat_s = point ~recovery:Nic.Selective ~ppm ~metric:`Latency in
      let tp_g = point ~recovery:Nic.Go_back_n ~ppm ~metric:`Tput in
      let tp_s = point ~recovery:Nic.Selective ~ppm ~metric:`Tput in
      tsv_row
        [ Fmt.str "%.2f%%" (float_of_int ppm /. 10_000.); f2 lat_g; f2 lat_s; f2 tp_g; f2 tp_s ];
      (ppm, lat_g, lat_s, tp_g, tp_s))
    loss_rates_ppm
