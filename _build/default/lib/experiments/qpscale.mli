(** §6: 8-byte RDMA write RTT as live QPs overflow the NIC's QP-state
    cache. *)

val qp_counts : int list
val point : qps:int -> float
(** Mean RTT in microseconds with [qps] live QPs. *)

val run : unit -> (int * float) list
