(** Lossy-fabric robustness: SocksDirect inter-host 8-byte RTT and
    throughput vs loss rate, go-back-N vs selective retransmission. *)

val loss_rates_ppm : int list

val point :
  recovery:Sds_transport.Nic.recovery -> ppm:int -> metric:[ `Latency | `Tput ] -> float

val run : unit -> (int * float * float * float * float) list
