(* Figure 10: message processing latency when multiple processes share one
   CPU core (1-8 processes).

   SocksDirect: K client processes all pinned to core 0, each ping-ponging
   with its own server thread on a dedicated core.  While waiting, a client
   yields the core cooperatively (§4.4); the measured latency grows with the
   rotation length — this is the real mechanism running, not a formula.

   Linux: the kernel's run queue plays the same role but each hop costs a
   full process wakeup instead of a cooperative switch.  We measure the
   K = 1 baseline with the kernel model and add the run-queue delay
   (K-1 extra wakeups per round trip), the standard M/D/1-style model the
   paper's Table 2 wakeup numbers imply. *)

open Sds_sim
open Common
module L = Socksdirect.Libsd

let procs_counts = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let sds_point ~procs =
  let w = make_world () in
  let h = add_host w in
  let stats = Stats.create () in
  let rounds = 300 and warmup = 30 in
  let finished = ref 0 in
  for k = 0 to procs - 1 do
    let port = 7200 + k in
    let ready = ref false in
    ignore
      (Proc.spawn w.engine ~name:(Fmt.str "f10-server%d" k) (fun () ->
           let ctx = L.init h in
           let th = L.create_thread ctx ~core:(1 + k) () in
           let lfd = L.socket th in
           L.bind th lfd ~port;
           L.listen th lfd;
           ready := true;
           let fd = L.accept th lfd in
           let buf = Bytes.create 8 in
           for _ = 1 to rounds + warmup do
             let got = ref 0 in
             while !got < 8 do
               let n = L.recv th fd buf ~off:!got ~len:(8 - !got) in
               if n = 0 then failwith "f10 server eof";
               got := !got + n
             done;
             ignore (L.send th fd buf ~off:0 ~len:8)
           done));
    ignore
      (Proc.spawn w.engine ~name:(Fmt.str "f10-client%d" k) (fun () ->
           while not !ready do
             Proc.sleep_ns 1_000
           done;
           let ctx = L.init h in
           (* All clients share core 0: the contended resource. *)
           let th = L.create_thread ctx ~core:0 () in
           let fd = L.socket th in
           L.connect th fd ~dst:h ~port;
           let buf = Bytes.create 8 in
           for i = 1 to rounds + warmup do
             let t0 = Engine.now w.engine in
             ignore (L.send th fd buf ~off:0 ~len:8);
             let got = ref 0 in
             while !got < 8 do
               let n = L.recv th fd buf ~off:!got ~len:(8 - !got) in
               if n = 0 then failwith "f10 client eof";
               got := !got + n
             done;
             if i > warmup then Stats.add stats (float_of_int (Engine.now w.engine - t0))
           done;
           incr finished))
  done;
  Engine.run ~until:120_000_000_000 w.engine;
  if !finished < procs then failwith "fig10: clients did not finish";
  ns_to_us (Stats.mean stats)

let linux_point ~procs =
  let w = make_world () in
  let h = add_host w in
  let base =
    pingpong (module Sds_apps.Sock_api.Linux) w ~client_host:h ~server_host:h ~size:8 ~rounds:100
      ~warmup:10
  in
  let wakeup = Cost.default.Cost.process_wakeup in
  ns_to_us (base.Stats.mean_v +. float_of_int (2 * (procs - 1) * wakeup))

let run () =
  header "Figure 10: latency with processes sharing one core";
  tsv_row [ "processes"; "SocksDirect"; "Linux"; "(us RTT)" ];
  let rows =
    List.map
      (fun procs ->
        let sd = sds_point ~procs in
        let lx = linux_point ~procs in
        tsv_row [ string_of_int procs; f2 sd; f2 lx ];
        (procs, sd, lx))
      procs_counts
  in
  rows
