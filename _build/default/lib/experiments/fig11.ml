(* Figure 11: Nginx-style HTTP request end-to-end latency vs response size.

   Topology per §5.3.1: the request generator is on a different host from
   Nginx; the HTTP response generator (upstream) shares the host with Nginx.
   The proxy and both generators are the same application code over each
   stack (LibVMA is excluded, as in the paper: it cannot run Nginx). *)

open Sds_sim
open Common

let sizes = [ 64; 512; 4096; 32768; 262144; 1048576 ]

let point (module Api : Sds_apps.Sock_api.S) ~size =
  let module H = Sds_apps.Http.Make (Api) in
  let w = make_world () in
  let gen_host = add_host w in
  let web_host = add_host w in
  let requests = if size >= 262144 then 30 else 100 in
  let warmup = 5 in
  let stats = Stats.create () in
  let upstream_ready = ref false and proxy_ready = ref false in
  ignore
    (Proc.spawn w.engine ~name:"responder" (fun () ->
         let ep = Api.make_endpoint web_host ~core:2 in
         let l = Api.listen ep ~port:8080 in
         upstream_ready := true;
         H.run_responder ep l ~requests:(requests + warmup)));
  ignore
    (Proc.spawn w.engine ~name:"proxy" (fun () ->
         while not !upstream_ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint web_host ~core:1 in
         let l = Api.listen ep ~port:80 in
         proxy_ready := true;
         H.run_proxy ep ~listener:l ~upstream:web_host ~upstream_port:8080
           ~requests:(requests + warmup)));
  let finished = ref false in
  ignore
    (Proc.spawn w.engine ~name:"generator" (fun () ->
         while not !proxy_ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint gen_host ~core:0 in
         let count = ref 0 in
         H.run_generator ep ~proxy:web_host ~port:80 ~requests:(requests + warmup) ~size
           ~on_latency:(fun ns ->
             incr count;
             if !count > warmup then Stats.add stats (float_of_int ns));
         finished := true));
  Engine.run ~until:300_000_000_000 w.engine;
  if not !finished then failwith "fig11: generator did not finish";
  Stats.summarize stats

let run () =
  header "Figure 11: Nginx HTTP request end-to-end latency";
  tsv_row [ "size"; "SocksDirect"; "Linux"; "(us, mean)" ];
  List.map
    (fun size ->
      let sd = point (module Sds_apps.Sock_api.Sds) ~size in
      let lx = point (module Sds_apps.Sock_api.Linux) ~size in
      tsv_row
        [ string_of_int size; f2 (ns_to_us sd.Stats.mean_v); f2 (ns_to_us lx.Stats.mean_v) ];
      (size, ns_to_us sd.Stats.mean_v, ns_to_us lx.Stats.mean_v))
    sizes
