(** §6 connection scalability: connections/second through one libsd thread
    and control messages/second through one monitor. *)

val app_conn_rate : unit -> float
val monitor_rate : unit -> float
val run : unit -> float * float
