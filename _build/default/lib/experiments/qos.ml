(* Performance isolation (Table 3's QoS row): two inter-host flows share a
   NIC; shaping one on its QP must cap that flow and leave the other's
   bandwidth share intact — the "QoS offloaded to the NIC" property. *)

open Sds_sim
open Sds_transport
open Common

(* Two 4 KiB streaming flows for [window_ns]; flow A optionally shaped.
   Returns (A Gbps, B Gbps). *)
let two_flows ~shape_a =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let n1 = Host.nic h1 and n2 = Host.nic h2 in
  let cq1 = Nic.create_cq n1 and cq2 = Nic.create_cq n2 in
  let recv_a = ref 0 and recv_b = ref 0 in
  let spawn_flow name qp counter =
    ignore
      (Proc.spawn w.engine ~name (fun () ->
           let payload = Bytes.make 4096 'f' in
           let rec loop i =
             Nic.wait_send_capacity qp;
             Proc.sleep_ns 100 (* sender CPU per write *);
             Nic.write_imm qp (Msg.data (Bytes.copy payload)) ~imm:i;
             loop (i + 1)
           in
           ignore counter;
           loop 1))
  in
  let qa, pa = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
  let qb, pb = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
  Nic.set_remote_sink pa (fun m -> recv_a := !recv_a + Msg.payload_len m);
  Nic.set_remote_sink pb (fun m -> recv_b := !recv_b + Msg.payload_len m);
  if shape_a then Nic.set_rate_limit qa ~bytes_per_sec:1.25e9 ~burst_bytes:65536;
  spawn_flow "qos-a" qa recv_a;
  spawn_flow "qos-b" qb recv_b;
  let window_ns = 5_000_000 in
  let a0 = ref 0 and b0 = ref 0 and a1 = ref 0 and b1 = ref 0 in
  Engine.schedule w.engine ~delay:1_000_000 (fun () ->
      a0 := !recv_a;
      b0 := !recv_b);
  Engine.schedule w.engine ~delay:(1_000_000 + window_ns) (fun () ->
      a1 := !recv_a;
      b1 := !recv_b;
      Engine.stop w.engine);
  Engine.run ~until:(2_000_000 + window_ns) w.engine;
  let gbps d = float_of_int d *. 8.0 /. float_of_int window_ns in
  (gbps (!a1 - !a0), gbps (!b1 - !b0))

let run () =
  header "QoS: two 4 KiB flows sharing a NIC, flow A shaped to 10 Gbps";
  tsv_row [ "config"; "flow A Gbps"; "flow B Gbps" ];
  let a_free, b_free = two_flows ~shape_a:false in
  tsv_row [ "unshaped"; f2 a_free; f2 b_free ];
  let a_cap, b_cap = two_flows ~shape_a:true in
  tsv_row [ "A shaped"; f2 a_cap; f2 b_cap ];
  ((a_free, b_free), (a_cap, b_cap))
