(* Figure 12: network-function pipeline throughput vs number of NFs.

   64-byte pcap-record packets flow source -> NF1 -> ... -> NFk -> sink, one
   process per NF.  Channel variants: SocksDirect connections, Linux TCP
   sockets, Linux pipes; NetBricks-style single-process composition is the
   reference line. *)

open Sds_sim
open Common
module Nf = Sds_apps.Nf

let nf_counts = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let packets = 8_000

(* Build a K-stage pipeline over a socket stack; returns packets/second. *)
let socket_pipeline (module Api : Sds_apps.Sock_api.S) ~stages =
  let module C = Nf.Sock_channel (Api) in
  let module R = Nf.Run (C) in
  let module Io = Sds_apps.Sock_api.Io (Api) in
  let w = make_world () in
  let h = add_host w in
  (* stage i listens on port 7300+i; stage i-1 connects forward to it. *)
  let t_done = ref 0 and t_first = ref 0 in
  let listeners_ready = Array.make (stages + 1) false in
  (* Sink is stage index [stages]. *)
  let finished = ref false in
  for i = 0 to stages do
    let port = 7300 + i in
    ignore
      (Proc.spawn w.engine ~name:(Fmt.str "nf%d" i) (fun () ->
           let ep = Api.make_endpoint h ~core:(1 + i) in
           let l = Api.listen ep ~port in
           listeners_ready.(i) <- true;
           let input = Io.make ep (Api.accept ep l) in
           if i = stages then begin
             (* sink *)
             let n = R.sink ~input in
             assert (n = packets);
             t_done := Engine.now w.engine;
             finished := true
           end
           else begin
             (* middle NF: connect to the next stage *)
             let out = Io.make ep (Api.connect ep ~dst:h ~port:(port + 1)) in
             ignore (R.nf_stage ~input ~output:out)
           end))
  done;
  ignore
    (Proc.spawn w.engine ~name:"nf-source" (fun () ->
         while not (Array.for_all (fun r -> r) listeners_ready) do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint h ~core:0 in
         let out = Io.make ep (Api.connect ep ~dst:h ~port:7300) in
         t_first := Engine.now w.engine;
         R.source ~output:out ~packets));
  Engine.run ~until:600_000_000_000 w.engine;
  if not !finished then failwith "fig12: pipeline did not drain";
  float_of_int packets /. (float_of_int (!t_done - !t_first) /. 1e9)

(* Kernel-pipe pipeline: one process chain connected by pipes. *)
let pipe_pipeline ~stages =
  let module R = Nf.Run (Nf.Pipe_channel) in
  let w = make_world () in
  let h = add_host w in
  let kernel = Sds_kernel.Kernel.for_host h in
  let kproc = Sds_kernel.Kernel.spawn_process kernel () in
  let t_done = ref 0 and t_first = ref 0 in
  let finished = ref false in
  (* Create the K+1 pipes up front (parent creates, children inherit). *)
  let pipes = ref [] in
  let setup = ref false in
  ignore
    (Proc.spawn w.engine ~name:"pipe-setup" (fun () ->
         pipes := List.init (stages + 1) (fun _ -> Sds_kernel.Kernel.pipe kproc);
         setup := true));
  ignore
    (Proc.spawn w.engine ~name:"pipe-run" (fun () ->
         while not !setup do
           Proc.sleep_ns 1_000
         done;
         let pipes = Array.of_list !pipes in
         for i = 0 to stages - 1 do
           let rd, _ = pipes.(i) and _, wr = pipes.(i + 1) in
           ignore
             (Proc.spawn w.engine ~name:(Fmt.str "pipe-nf%d" i) (fun () ->
                  ignore (R.nf_stage ~input:(kproc, rd) ~output:(kproc, wr))))
         done;
         let rd_last, _ = pipes.(stages) in
         ignore
           (Proc.spawn w.engine ~name:"pipe-sink" (fun () ->
                let n = R.sink ~input:(kproc, rd_last) in
                assert (n = packets);
                t_done := Engine.now w.engine;
                finished := true));
         let _, wr0 = pipes.(0) in
         t_first := Engine.now w.engine;
         R.source ~output:(kproc, wr0) ~packets));
  Engine.run ~until:600_000_000_000 w.engine;
  if not !finished then failwith "fig12: pipe pipeline did not drain";
  float_of_int packets /. (float_of_int (!t_done - !t_first) /. 1e9)

(* NetBricks-style reference: NFs composed in one address space but run on
   separate cores with zero-cost handoff (run-to-completion pipelining), so
   throughput is bounded by the slowest single stage, not the stage sum.
   We measure one stage's per-packet cost and account for pipeline fill. *)
let netbricks_point ~stages =
  let w = make_world () in
  let _h = add_host w in
  let t_done = ref 0 in
  ignore
    (Proc.spawn w.engine ~name:"netbricks" (fun () ->
         ignore (Nf.netbricks_pipeline ~stages:1 ~packets);
         t_done := Engine.now w.engine));
  Engine.run ~until:600_000_000_000 w.engine;
  let fill = !t_done / packets * (stages - 1) in
  float_of_int packets /. (float_of_int (!t_done + fill) /. 1e9)

let run () =
  header "Figure 12: NF pipeline throughput vs number of NFs";
  tsv_row [ "nfs"; "SocksDirect"; "LinuxPipe"; "LinuxTCP"; "NetBricks"; "(Mpkt/s)" ];
  List.map
    (fun stages ->
      let sd = socket_pipeline (module Sds_apps.Sock_api.Sds) ~stages in
      let pipe = pipe_pipeline ~stages in
      let tcp = socket_pipeline (module Sds_apps.Sock_api.Linux) ~stages in
      let nb = netbricks_point ~stages in
      tsv_row
        [ string_of_int stages; f2 (mops sd); f2 (mops pipe); f2 (mops tcp); f2 (mops nb) ];
      (stages, sd, pipe, tcp, nb))
    nf_counts
