(* Tables 1-4 of the paper.

   Table 1 is the overhead inventory (static mapping, with pointers to the
   mechanism in this repo).  Table 2 mixes measured micro-benchmarks run in
   the simulator with the calibrated constants they derive from.  Table 3 is
   the feature matrix.  Table 4 prints the per-op / per-packet / per-kbyte /
   per-connection breakdown, plus measured end-to-end totals. *)

open Sds_sim
open Common
module K = Sds_kernel.Kernel

let cost = Cost.default

(* ---- Table 1 ---- *)

let table1_rows =
  [
    ("per op", "Kernel crossing (syscall)", "user-space library (libsd.ml)");
    ("per op", "Socket FD locks", "token-based sharing (token.ml)");
    ("per packet", "Transport protocol (TCP/IP)", "RDMA / SHM (nic.ml, shm_chan.ml)");
    ("per packet", "Buffer management", "per-socket ring buffer (spsc_ring.ml)");
    ("per packet", "I/O multiplexing", "RDMA / SHM queues (nic.ml)");
    ("per packet", "Interrupt handling", "event notification (libsd.ml §4.4)");
    ("per packet", "Process wakeup", "event notification (libsd.ml §4.4)");
    ("per byte", "Payload copy", "page remapping (zerocopy.ml)");
    ("per conn", "Kernel FD allocation", "FD remapping table (fd_table.ml)");
    ("per conn", "Locks in TCB management", "distributed to libsd (libsd.ml)");
    ("per conn", "New connection dispatch", "monitor daemon (monitor.ml)");
  ]

let run_table1 () =
  header "Table 1: overheads in Linux socket and our solutions";
  tsv_row [ "type"; "overhead"; "solution (module)" ];
  List.iter (fun (a, b, c) -> tsv_row [ a; b; c ]) table1_rows

(* ---- Table 2 ---- *)

(* Ping-pong over kernel pipes (both directions pipes). *)
let pipe_rtt () =
  let w = make_world () in
  let h = add_host w in
  let kernel = K.for_host h in
  let kproc = K.spawn_process kernel () in
  let stats = Stats.create () in
  let done_ = ref false in
  ignore
    (Proc.spawn w.engine ~name:"pipe-pp" (fun () ->
         let r1, w1 = K.pipe kproc in
         let r2, w2 = K.pipe kproc in
         ignore
           (Proc.spawn w.engine ~name:"pipe-echo" (fun () ->
                let b = Bytes.create 8 in
                for _ = 1 to 120 do
                  let n = K.recv kproc r1 b ~off:0 ~len:8 in
                  assert (n = 8);
                  ignore (K.send kproc w2 b ~off:0 ~len:8)
                done));
         let b = Bytes.create 8 in
         for i = 1 to 120 do
           let t0 = Engine.now w.engine in
           ignore (K.send kproc w1 b ~off:0 ~len:8);
           let n = K.recv kproc r2 b ~off:0 ~len:8 in
           assert (n = 8);
           if i > 20 then Stats.add stats (float_of_int (Engine.now w.engine - t0))
         done;
         done_ := true));
  Engine.run ~until:60_000_000_000 w.engine;
  assert !done_;
  ns_to_us (Stats.mean stats)

(* Ping-pong over a kernel Unix socketpair. *)
let unix_rtt () =
  let w = make_world () in
  let h = add_host w in
  let kernel = K.for_host h in
  let kproc = K.spawn_process kernel () in
  let stats = Stats.create () in
  let done_ = ref false in
  ignore
    (Proc.spawn w.engine ~name:"uds-pp" (fun () ->
         let a, b = K.unix_socketpair kproc in
         ignore
           (Proc.spawn w.engine ~name:"uds-echo" (fun () ->
                let buf = Bytes.create 8 in
                for _ = 1 to 120 do
                  let n = K.recv kproc b buf ~off:0 ~len:8 in
                  assert (n = 8);
                  ignore (K.send kproc b buf ~off:0 ~len:8)
                done));
         let buf = Bytes.create 8 in
         for i = 1 to 120 do
           let t0 = Engine.now w.engine in
           ignore (K.send kproc a buf ~off:0 ~len:8);
           let n = K.recv kproc a buf ~off:0 ~len:8 in
           assert (n = 8);
           if i > 20 then Stats.add stats (float_of_int (Engine.now w.engine - t0))
         done;
         done_ := true));
  Engine.run ~until:60_000_000_000 w.engine;
  assert !done_;
  ns_to_us (Stats.mean stats)

let measured_rtt_tput stack ~intra =
  let w = make_world () in
  let h1 = add_host w in
  let ch, sh = if intra then (h1, h1) else (h1, add_host w) in
  let lat = (pingpong stack w ~client_host:ch ~server_host:sh ~size:8 ~rounds:200 ~warmup:20).Stats.mean_v in
  let w2 = make_world () in
  let h1 = add_host w2 in
  let ch, sh = if intra then (h1, h1) else (h1, add_host w2) in
  let tput = stream_tput stack w2 ~client_host:ch ~server_host:sh ~size:8 ~pairs:1 ~warmup_ns:1_000_000 ~window_ns:5_000_000 in
  (ns_to_us lat, mops tput)

let run_table2 () =
  header "Table 2: round-trip latency and single-core throughput of operations (8-byte)";
  tsv_row [ "operation"; "latency(us)"; "tput(Mop/s)"; "source" ];
  let const name lat_ns tput =
    tsv_row [ name; f2 (float_of_int lat_ns /. 1000.); tput; "calibrated constant" ]
  in
  const "Inter-core cache migration" cost.Cost.cache_migration "50";
  const "Poll 32 empty queues" cost.Cost.poll_empty_32 "24";
  const "System call (before KPTI)" cost.Cost.syscall_pre_kpti "21";
  const "Spinlock (no contention)" cost.Cost.spinlock "10";
  const "Allocate and deallocate a buffer" cost.Cost.buffer_alloc_free "7.7";
  const "Spinlock (contended)" cost.Cost.spinlock_contended "5";
  let shm_lat, shm_tput = measured_rtt_tput (module Raw_stacks.Raw_shm) ~intra:true in
  tsv_row [ "Lockless shared memory queue"; f2 shm_lat; f2 shm_tput; "measured" ];
  let sd_lat, sd_tput = measured_rtt_tput (module Sds_apps.Sock_api.Sds) ~intra:true in
  tsv_row [ "Intra-host SocksDirect"; f2 sd_lat; f2 sd_tput; "measured" ];
  const "System call (after KPTI)" cost.Cost.syscall_post_kpti "5.0";
  const "Copy one page (4 KiB)" cost.Cost.copy_page_4k "5.0";
  const "Cooperative context switch" cost.Cost.yield_switch "2.0";
  const "Map one page (4 KiB)" cost.Cost.map_page_4k "1.3";
  const "NIC hairpin within a host" cost.Cost.nic_hairpin "1.0";
  (* Atomic (locked) SHM queue: the lockless queue plus one contended lock
     per op on each side. *)
  let atomic_lat = shm_lat +. (4. *. float_of_int cost.Cost.spinlock_contended /. 1000.) in
  let atomic_tput = 1000. /. ((1000. /. shm_tput) +. float_of_int cost.Cost.spinlock_contended) in
  tsv_row [ "Atomic shared memory queue"; f2 atomic_lat; f2 atomic_tput; "derived" ];
  const "Map 32 pages (128 KiB)" cost.Cost.map_32_pages "0.8";
  const "Open a socket FD" cost.Cost.open_socket_fd "0.6";
  let rdma_lat, rdma_tput = measured_rtt_tput (module Raw_stacks.Raw_rdma) ~intra:false in
  tsv_row [ "One-sided RDMA write"; f2 rdma_lat; f2 rdma_tput; "measured" ];
  let sdi_lat, sdi_tput = measured_rtt_tput (module Sds_apps.Sock_api.Sds) ~intra:false in
  tsv_row [ "Inter-host SocksDirect"; f2 sdi_lat; f2 sdi_tput; "measured" ];
  const "Process wakeup" cost.Cost.process_wakeup "0.2~0.4";
  tsv_row [ "Linux pipe / FIFO"; f2 (pipe_rtt ()); "1.2"; "measured (latency)" ];
  tsv_row [ "Unix domain socket in Linux"; f2 (unix_rtt ()); "0.9"; "measured (latency)" ];
  let lx_lat, lx_tput = measured_rtt_tput (module Sds_apps.Sock_api.Linux) ~intra:true in
  tsv_row [ "Intra-host Linux TCP socket"; f2 lx_lat; f2 lx_tput; "measured" ];
  let lxi_lat, lxi_tput = measured_rtt_tput (module Sds_apps.Sock_api.Linux) ~intra:false in
  tsv_row [ "Inter-host Linux TCP socket"; f2 lxi_lat; f2 lxi_tput; "measured" ]

(* ---- Table 3 ---- *)

let run_table3 () =
  header "Table 3: comparison of high performance socket systems";
  List.iter (fun s -> Fmt.pr "%a@." Sds_baselines.Features.pp_row s) Sds_baselines.Features.systems

(* ---- Table 4 ---- *)

(* Measure connection setup latency: time a connect() call. *)
let conn_setup_ns (module Api : Sds_apps.Sock_api.S) ~intra =
  let w = make_world () in
  let h1 = add_host w in
  let ch, sh = if intra then (h1, h1) else (h1, add_host w) in
  let ready = ref false in
  ignore
    (Proc.spawn w.engine ~name:"t4-server" (fun () ->
         let ep = Api.make_endpoint sh ~core:1 in
         let l = Api.listen ep ~port:7400 in
         ready := true;
         (* Accept a few connections. *)
         for _ = 1 to 3 do
           ignore (Api.accept ep l)
         done));
  let result = ref 0 in
  let done_ = ref false in
  ignore
    (Proc.spawn w.engine ~name:"t4-client" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint ch ~core:0 in
         (* Warm one connection (monitor-monitor link, registries). *)
         ignore (Api.connect ep ~dst:sh ~port:7400);
         let t0 = Engine.now w.engine in
         ignore (Api.connect ep ~dst:sh ~port:7400);
         result := Engine.now w.engine - t0;
         done_ := true));
  Engine.run ~until:60_000_000_000 w.engine;
  assert !done_;
  !result

let run_table4 () =
  header "Table 4: latency breakdown (ns, calibrated components + measured totals)";
  tsv_row [ "category"; "component"; "SocksDirect"; "LibVMA"; "RSocket"; "Linux" ];
  let r c n a b d e = tsv_row [ c; n; a; b; d; e ] in
  r "per op" "C library shim" (string_of_int cost.Cost.c_shim) "10" "10" "12";
  r "per op" "kernel crossing" "-" "-" "-" (string_of_int (Cost.syscall cost));
  r "per op" "socket FD locking" "-"
    (string_of_int cost.Cost.fd_lock_vma)
    (string_of_int cost.Cost.fd_lock_rsocket)
    (string_of_int cost.Cost.fd_lock_linux);
  r "per packet" "buffer management"
    (string_of_int cost.Cost.sd_buffer_mgmt)
    (string_of_int cost.Cost.vma_buffer_mgmt)
    (string_of_int cost.Cost.rsocket_buffer_mgmt)
    (string_of_int cost.Cost.linux_buffer_mgmt);
  r "per packet" "transport protocol" "-" (string_of_int cost.Cost.vma_transport) "-"
    (string_of_int cost.Cost.linux_transport);
  r "per packet" "packet processing" "-" (string_of_int cost.Cost.vma_packet_proc) "-"
    (string_of_int cost.Cost.linux_packet_proc);
  r "per packet" "NIC doorbell and DMA"
    (string_of_int cost.Cost.doorbell_dma_sd)
    (string_of_int cost.Cost.doorbell_dma_2sided)
    (string_of_int cost.Cost.doorbell_dma_2sided)
    (string_of_int cost.Cost.doorbell_dma_linux);
  r "per packet" "NIC interrupt handling" "-" "-" "-" (string_of_int cost.Cost.linux_interrupt);
  r "per packet" "process wakeup" "-" "-" "-" (string_of_int cost.Cost.process_wakeup);
  r "per kbyte" "wire transfer" (string_of_int cost.Cost.wire_per_kb) "same" "same" "same";
  r "per kbyte" "payload copy (per side)"
    (Fmt.str "%d (>=16K: %d remap)" cost.Cost.copy_per_kb cost.Cost.sd_remap_per_kb)
    (string_of_int cost.Cost.copy_per_kb)
    (string_of_int cost.Cost.copy_per_kb)
    (string_of_int cost.Cost.copy_per_kb);
  (* Measured one-way 8-byte latency ("per packet total"). *)
  let one_way stack ~intra =
    let w = make_world () in
    let h1 = add_host w in
    let ch, sh = if intra then (h1, h1) else (h1, add_host w) in
    (pingpong stack w ~client_host:ch ~server_host:sh ~size:8 ~rounds:100 ~warmup:10).Stats.mean_v /. 2.
  in
  r "measured" "per packet total (intra)"
    (f2 (one_way (module Sds_apps.Sock_api.Sds) ~intra:true))
    (f2 (one_way (module Sds_apps.Sock_api.Libvma) ~intra:true))
    (f2 (one_way (module Sds_apps.Sock_api.Rsocket) ~intra:true))
    (f2 (one_way (module Sds_apps.Sock_api.Linux) ~intra:true));
  r "measured" "per packet total (inter)"
    (f2 (one_way (module Sds_apps.Sock_api.Sds) ~intra:false))
    (f2 (one_way (module Sds_apps.Sock_api.Libvma) ~intra:false))
    (f2 (one_way (module Sds_apps.Sock_api.Rsocket) ~intra:false))
    (f2 (one_way (module Sds_apps.Sock_api.Linux) ~intra:false));
  r "measured" "per connection (intra)"
    (string_of_int (conn_setup_ns (module Sds_apps.Sock_api.Sds) ~intra:true))
    (string_of_int (conn_setup_ns (module Sds_apps.Sock_api.Libvma) ~intra:true))
    (string_of_int (conn_setup_ns (module Sds_apps.Sock_api.Rsocket) ~intra:true))
    (string_of_int (conn_setup_ns (module Sds_apps.Sock_api.Linux) ~intra:true));
  r "measured" "per connection (inter)"
    (string_of_int (conn_setup_ns (module Sds_apps.Sock_api.Sds) ~intra:false))
    (string_of_int (conn_setup_ns (module Sds_apps.Sock_api.Libvma) ~intra:false))
    (string_of_int (conn_setup_ns (module Sds_apps.Sock_api.Rsocket) ~intra:false))
    (string_of_int (conn_setup_ns (module Sds_apps.Sock_api.Linux) ~intra:false))
