(** Figure 10: message latency with 1-8 processes sharing one core.

    The SocksDirect series runs the real cooperative rotation (§4.4); the
    Linux series adds a wakeup-per-waiter run-queue model to its measured
    single-process baseline. *)

val sds_point : procs:int -> float
(** Mean RTT in microseconds. *)

val linux_point : procs:int -> float

val run : unit -> (int * float * float) list
