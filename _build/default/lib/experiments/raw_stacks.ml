(* "Raw" reference stacks for the figures' dashed lines: bare RDMA write
   verbs and a bare SHM queue, with no socket semantics on top.  These bound
   what any socket system could achieve (Figure 8's RDMA line, Table 2's
   lockless-queue row). *)

open Sds_sim
open Sds_transport

(* ---- raw one-sided RDMA write ---- *)

module Raw_rdma : sig
  include Sds_apps.Sock_api.S with type endpoint = Host.t

  val reset : unit -> unit
end = struct
  let name = "RDMA"

  type endpoint = Host.t

  type conn = {
    host : Host.t;
    mutable qp : Nic.qp option;
    incoming : Msg.t Queue.t;
    rx_wq : Waitq.t;
    mutable partial : (Bytes.t * int) option;
  }

  type listener = { backlog : conn Queue.t; l_wq : Waitq.t; l_host : Host.t }

  let listeners : (int * int, listener) Hashtbl.t = Hashtbl.create 8

  let reset () = Hashtbl.reset listeners
  let make_endpoint host ~core:_ = host

  let listen host ~port =
    let l = { backlog = Queue.create (); l_wq = Waitq.create (); l_host = host } in
    Hashtbl.replace listeners (Host.id host, port) l;
    l

  let make_conn host =
    { host; qp = None; incoming = Queue.create (); rx_wq = Waitq.create (); partial = None }

  let deliver c msg =
    Queue.push msg c.incoming;
    Waitq.signal c.rx_wq

  let connect host ~dst ~port =
    match Hashtbl.find_opt listeners (Host.id dst, port) with
    | None -> failwith "raw-rdma: refused"
    | Some l ->
      let c = make_conn host and s = make_conn dst in
      let nic_c = Host.nic host and nic_s = Host.nic dst in
      let cq_c = Nic.create_cq nic_c and cq_s = Nic.create_cq nic_s in
      let qc, qs = Nic.connect_qps nic_c nic_s ~scq_a:cq_c ~rcq_a:cq_c ~scq_b:cq_s ~rcq_b:cq_s in
      Nic.set_remote_sink qc (fun m -> deliver c m);
      Nic.set_remote_sink qs (fun m -> deliver s m);
      c.qp <- Some qc;
      s.qp <- Some qs;
      Queue.push s l.backlog;
      Waitq.signal l.l_wq;
      c

  let rec accept _ l =
    match Queue.take_opt l.backlog with
    | Some c -> c
    | None ->
      (match Waitq.wait l.l_wq with _ -> ());
      accept l.l_host l

  (* A raw write posts the WQE (one doorbell MMIO) and returns; no locks, no
     buffer management, no socket bookkeeping. *)
  let send _ c buf ~off ~len =
    (match c.qp with
    | Some qp ->
      Nic.wait_send_capacity qp;
      Proc.sleep_ns 30 (* WQE construction + doorbell write *);
      Nic.write_imm qp (Msg.data (Bytes.sub buf off len)) ~imm:0
    | None -> failwith "raw-rdma: not connected");
    len

  let rec recv _ c buf ~off ~len =
    match c.partial with
    | Some (b, consumed) ->
      let avail = Bytes.length b - consumed in
      let take = min len avail in
      Bytes.blit b consumed buf off take;
      c.partial <- (if take = avail then None else Some (b, consumed + take));
      take
    | None -> (
      match Queue.take_opt c.incoming with
      | Some msg ->
        Proc.sleep_ns 30 (* CQ poll + completion handling *);
        let b = Msg.to_bytes msg in
        let plen = Bytes.length b in
        let take = min len plen in
        Bytes.blit b 0 buf off take;
        if take < plen then c.partial <- Some (b, take);
        take
      | None ->
        (match Waitq.wait c.rx_wq with _ -> ());
        recv c.host c buf ~off ~len)

  let close _ c = match c.qp with Some qp -> Nic.destroy_qp qp | None -> ()
end

(* ---- raw lockless SHM queue ---- *)

module Raw_shm : sig
  include Sds_apps.Sock_api.S with type endpoint = Host.t

  val reset : unit -> unit
end = struct
  let name = "SHM queue"

  type endpoint = Host.t

  type conn = { tx : Shm_chan.t; rx : Shm_chan.t; mutable partial : (Bytes.t * int) option }
  type listener = { backlog : conn Queue.t; l_wq : Waitq.t }

  let listeners : (int * int, listener) Hashtbl.t = Hashtbl.create 8

  let reset () = Hashtbl.reset listeners
  let make_endpoint host ~core:_ = host

  let listen host ~port =
    let l = { backlog = Queue.create (); l_wq = Waitq.create () } in
    Hashtbl.replace listeners (Host.id host, port) l;
    l

  let connect host ~dst ~port =
    match Hashtbl.find_opt listeners (Host.id dst, port) with
    | None -> failwith "raw-shm: refused"
    | Some l ->
      let a2b = Shm_chan.create host.Host.engine ~cost:host.Host.cost () in
      let b2a = Shm_chan.create host.Host.engine ~cost:host.Host.cost () in
      Queue.push { tx = b2a; rx = a2b; partial = None } l.backlog;
      Waitq.signal l.l_wq;
      { tx = a2b; rx = b2a; partial = None }

  let rec accept host l =
    match Queue.take_opt l.backlog with
    | Some c -> c
    | None ->
      (match Waitq.wait l.l_wq with _ -> ());
      accept host l

  let rec send host c buf ~off ~len =
    match Shm_chan.try_send c.tx (Msg.data (Bytes.sub buf off len)) with
    | Shm_chan.Sent -> len
    | Shm_chan.Full ->
      (match Waitq.wait (Shm_chan.tx_waitq c.tx) with _ -> ());
      send host c buf ~off ~len

  let rec recv host c buf ~off ~len =
    match c.partial with
    | Some (b, consumed) ->
      let avail = Bytes.length b - consumed in
      let take = min len avail in
      Bytes.blit b consumed buf off take;
      c.partial <- (if take = avail then None else Some (b, consumed + take));
      take
    | None -> (
      match Shm_chan.try_recv c.rx with
      | Some msg ->
        let b = Msg.to_bytes msg in
        let plen = Bytes.length b in
        let take = min len plen in
        Bytes.blit b 0 buf off take;
        if take < plen then c.partial <- Some (b, take);
        take
      | None ->
        (match Waitq.wait (Shm_chan.rx_waitq c.rx) with _ -> ());
        recv host c buf ~off ~len)

  let close _ _ = ()
end
