(** Figures 7 and 8: single-core throughput and latency vs message size,
    intra-host (7) and inter-host (8, including the raw RDMA line). *)

val sizes : int list

type stack = (module Sds_apps.Sock_api.S)

val tput_point : stack -> intra:bool -> size:int -> float
(** Aggregate messages/second for one streaming pair. *)

val latency_point : stack -> intra:bool -> size:int -> Sds_sim.Stats.summary
(** Ping-pong RTT statistics (ns). *)

type row = { size : int; values : (string * float) list }

val run_fig7 : unit -> row list * row list
(** [(throughput rows in Gbps, latency rows in us)]; prints both tables. *)

val run_fig8 : unit -> row list * row list
