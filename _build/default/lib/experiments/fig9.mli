(** Figure 9: aggregate 8-byte message throughput vs core pairs. *)

val core_counts : int list

type stack = (module Sds_apps.Sock_api.S)

val point : stack -> intra:bool -> pairs:int -> float
val run : unit -> (int * (string * float) list) list * (int * (string * float) list) list
