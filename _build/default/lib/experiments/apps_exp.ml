(* §5.3.2 Redis and §5.3.3 RPC application experiments. *)

open Sds_sim
open Common

(* Redis: 8-byte GET over the network (generator on another host), mean and
   1%/99% latency — the numbers the paper reports from redis-benchmark. *)
let redis_point (module Api : Sds_apps.Sock_api.S) =
  let module Kv = Sds_apps.Kvstore.Make (Api) in
  let w = make_world () in
  let client_host = add_host w in
  let server_host = add_host w in
  let stats = Stats.create () in
  let ready = ref false in
  let gets = 300 and warmup = 30 in
  ignore
    (Proc.spawn w.engine ~name:"redis-server" (fun () ->
         let ep = Api.make_endpoint server_host ~core:1 in
         let l = Api.listen ep ~port:6379 in
         ready := true;
         (* +1 for the initial SET *)
         Kv.run_server ep l ~requests:(gets + warmup + 1)));
  let done_ = ref false in
  ignore
    (Proc.spawn w.engine ~name:"redis-bench" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint client_host ~core:0 in
         let count = ref 0 in
         Kv.run_client ep ~server:server_host ~port:6379 ~gets:(gets + warmup) ~value_size:8
           ~on_latency:(fun ns ->
             incr count;
             if !count > warmup then Stats.add stats (float_of_int ns));
         done_ := true));
  Engine.run ~until:120_000_000_000 w.engine;
  assert !done_;
  Stats.summarize stats

let run_redis () =
  header "Redis 8-byte GET latency (us): mean [p1, p99]";
  let p (module Api : Sds_apps.Sock_api.S) =
    let s = redis_point (module Api) in
    tsv_row
      [ Api.name; f2 (ns_to_us s.Stats.mean_v); f2 (ns_to_us s.Stats.p1); f2 (ns_to_us s.Stats.p99) ];
    s
  in
  let lx = p (module Sds_apps.Sock_api.Linux) in
  let sd = p (module Sds_apps.Sock_api.Sds) in
  (lx, sd)

(* RPClib-style 1 KiB echo RPC, intra-host and inter-host. *)
let rpc_point (module Api : Sds_apps.Sock_api.S) ~intra =
  let module R = Sds_apps.Rpc.Make (Api) in
  let w = make_world () in
  let h1 = add_host w in
  let ch, sh = if intra then (h1, h1) else (h1, add_host w) in
  let stats = Stats.create () in
  let calls = 100 and warmup = 10 in
  let ready = ref false in
  ignore
    (Proc.spawn w.engine ~name:"rpc-server" (fun () ->
         let ep = Api.make_endpoint sh ~core:1 in
         let l = Api.listen ep ~port:8081 in
         ready := true;
         let srv = R.create_server () in
         R.register srv "echo" (fun payload -> payload);
         R.serve ep l srv ~calls:(calls + warmup)));
  let done_ = ref false in
  ignore
    (Proc.spawn w.engine ~name:"rpc-client" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint ch ~core:0 in
         let client = R.connect ep ~dst:sh ~port:8081 in
         let payload = Bytes.make 1024 'r' in
         for i = 1 to calls + warmup do
           let t0 = Engine.now w.engine in
           let result = R.call client ~meth:"echo" ~payload in
           assert (Bytes.length result = 1024);
           if i > warmup then Stats.add stats (float_of_int (Engine.now w.engine - t0))
         done;
         done_ := true));
  Engine.run ~until:120_000_000_000 w.engine;
  assert !done_;
  ns_to_us (Stats.mean stats)

let run_rpc () =
  header "RPClib 1 KiB RPC round-trip (us)";
  tsv_row [ "stack"; "intra-host"; "inter-host" ];
  let lx_i = rpc_point (module Sds_apps.Sock_api.Linux) ~intra:true in
  let lx_x = rpc_point (module Sds_apps.Sock_api.Linux) ~intra:false in
  tsv_row [ "Linux"; f2 lx_i; f2 lx_x ];
  let sd_i = rpc_point (module Sds_apps.Sock_api.Sds) ~intra:true in
  let sd_x = rpc_point (module Sds_apps.Sock_api.Sds) ~intra:false in
  tsv_row [ "SocksDirect"; f2 sd_i; f2 sd_x ];
  ((lx_i, lx_x), (sd_i, sd_x))
