(** Ablations of DESIGN.md §5: token sharing vs locking vs per-op take-over,
    adaptive batching on/off, zero copy on/off. *)

val takeover_alternating_rate : unit -> float
(** Messages/second when two threads alternate sends on one socket (every
    message pays a take-over). *)

val run : unit -> float * float * float * float * float * float
(** [(single-owner rate, alternating rate, batched, unbatched, zerocopy
    Gbps-rate base, copying rate)]. *)
