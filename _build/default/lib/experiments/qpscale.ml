(* §6 "scale to many connections": inter-host small-message latency as the
   number of live QPs grows past the NIC's on-chip QP-state cache.  With
   thousands of connections each operation risks a state fetch over PCIe —
   the cache-miss problem the paper discusses (and expects bigger NIC
   memories to relieve). *)

open Sds_sim
open Sds_transport
open Common

let qp_counts = [ 16; 256; 1024; 2048; 4096; 8192 ]

let point ~qps =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let n1 = Host.nic h1 and n2 = Host.nic h2 in
  let cq1 = Nic.create_cq n1 and cq2 = Nic.create_cq n2 in
  (* Background connections occupying NIC QP state. *)
  for _ = 1 to qps - 1 do
    let _qa, qb = Nic.connect_qps ~charge_setup:false n1 n2 ~scq_a:cq1 ~rcq_a:cq1 ~scq_b:cq2 ~rcq_b:cq2 in
    Nic.set_remote_sink qb ignore
  done;
  let s = pingpong (module Raw_stacks.Raw_rdma) w ~client_host:h1 ~server_host:h2 ~size:8 ~rounds:100 ~warmup:10 in
  ns_to_us s.Stats.mean_v

let run () =
  header "QP scalability: 8-byte RDMA write RTT vs live QPs (NIC cache pressure, §6)";
  tsv_row [ "live QPs"; "RTT (us)" ];
  List.map
    (fun qps ->
      let v = point ~qps in
      tsv_row [ string_of_int qps; f2 v ];
      (qps, v))
    qp_counts
