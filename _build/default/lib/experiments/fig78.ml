(* Figures 7 and 8: single-core throughput and latency vs message size,
   intra-host (Figure 7) and inter-host (Figure 8).

   Each data point runs in a fresh world: one streaming pair for throughput,
   one ping-pong pair for latency.  Figure 8 adds the raw RDMA write line. *)

open Common

let sizes = [ 8; 64; 512; 4096; 32768; 262144; 1048576 ]

type stack = (module Sds_apps.Sock_api.S)

let stacks_fig7 : stack list =
  [
    (module Sds_apps.Sock_api.Sds);
    (module Sds_apps.Sock_api.Linux);
    (module Sds_apps.Sock_api.Libvma);
    (module Sds_apps.Sock_api.Rsocket);
    (module Sds_apps.Sock_api.Sds_unopt);
  ]

let stacks_fig8 : stack list = stacks_fig7 @ [ (module Raw_stacks.Raw_rdma) ]

let hosts_for w ~intra =
  let h1 = add_host w in
  if intra then (h1, h1) else (h1, add_host w)

let tput_point stack ~intra ~size =
  let w = make_world () in
  let client_host, server_host = hosts_for w ~intra in
  let window_ns = if size >= 262144 then 20_000_000 else 5_000_000 in
  stream_tput stack w ~client_host ~server_host ~size ~pairs:1 ~warmup_ns:1_000_000 ~window_ns

let latency_point stack ~intra ~size =
  let w = make_world () in
  let client_host, server_host = hosts_for w ~intra in
  let rounds = if size >= 262144 then 50 else 200 in
  pingpong stack w ~client_host ~server_host ~size ~rounds ~warmup:20

type row = { size : int; values : (string * float) list }

let sweep ~stacks ~intra ~metric =
  List.map
    (fun size ->
      let values =
        List.map
          (fun stack ->
            let (module Api : Sds_apps.Sock_api.S) = stack in
            let v =
              match metric with
              | `Tput -> gbps ~size ~msg_per_s:(tput_point stack ~intra ~size)
              | `Latency -> ns_to_us (latency_point stack ~intra ~size).Sds_sim.Stats.mean_v
            in
            (Api.name, v))
          stacks
      in
      { size; values })
    sizes

let print_rows ~title ~unit rows =
  header title;
  (match rows with
  | r :: _ -> tsv_row ("size" :: List.map fst r.values @ [ "(" ^ unit ^ ")" ])
  | [] -> ());
  List.iter
    (fun r -> tsv_row (string_of_int r.size :: List.map (fun (_, v) -> f3 v) r.values))
    rows

let run_fig7 () =
  let tput = sweep ~stacks:stacks_fig7 ~intra:true ~metric:`Tput in
  print_rows ~title:"Figure 7a: intra-host single-core throughput vs message size" ~unit:"Gbps" tput;
  let lat = sweep ~stacks:stacks_fig7 ~intra:true ~metric:`Latency in
  print_rows ~title:"Figure 7b: intra-host RTT latency vs message size" ~unit:"us" lat;
  (tput, lat)

let run_fig8 () =
  let tput = sweep ~stacks:stacks_fig8 ~intra:false ~metric:`Tput in
  print_rows ~title:"Figure 8a: inter-host single-core throughput vs message size" ~unit:"Gbps" tput;
  let lat = sweep ~stacks:stacks_fig8 ~intra:false ~metric:`Latency in
  print_rows ~title:"Figure 8b: inter-host RTT latency vs message size" ~unit:"us" lat;
  (tput, lat)
