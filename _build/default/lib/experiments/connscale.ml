(* §6 connection scalability: connections per second through one libsd
   thread, and control messages per second through one monitor.

   As in the paper's synthetic experiment, connections are created between
   two processes on one host so no new RDMA QPs are involved. *)

open Sds_sim
open Common
module L = Socksdirect.Libsd
module Monitor = Socksdirect.Monitor

(* Application connect rate: one client thread connecting in a closed loop
   to an accepting server. *)
let app_conn_rate () =
  let w = make_world () in
  let h = add_host w in
  let accepted = ref 0 in
  let ready = ref false in
  ignore
    (Proc.spawn w.engine ~name:"cs-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:1 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:9000;
         L.listen th lfd;
         ready := true;
         let rec loop () =
           let fd = L.accept th lfd in
           incr accepted;
           L.close th fd;
           loop ()
         in
         loop ()));
  let connected = ref 0 in
  ignore
    (Proc.spawn w.engine ~name:"cs-client" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:0 () in
         let rec loop () =
           let fd = L.socket th in
           L.connect th fd ~dst:h ~port:9000;
           incr connected;
           L.close th fd;
           loop ()
         in
         loop ()));
  let window_ns = 10_000_000 in
  let at_start = ref 0 and at_end = ref 0 in
  Engine.schedule w.engine ~delay:1_000_000 (fun () -> at_start := !connected);
  Engine.schedule w.engine ~delay:(1_000_000 + window_ns) (fun () ->
      at_end := !connected;
      Engine.stop w.engine);
  Engine.run ~until:(2_000_000 + window_ns) w.engine;
  float_of_int (!at_end - !at_start) /. (float_of_int window_ns /. 1e9)

(* Monitor control-message rate: several requester procs keep the monitor's
   queue non-empty with stateless control messages (fork-secret checks). *)
let monitor_rate () =
  let w = make_world () in
  let h = add_host w in
  let monitor = Monitor.for_host h in
  for i = 0 to 15 do
    ignore
      (Proc.spawn w.engine ~name:(Fmt.str "mon-req%d" i) (fun () ->
           let rec loop () =
             ignore
               (Monitor.rpc monitor (fun reply ->
                    Monitor.Fork_pair { fp_secret = i; fp_reply = reply }));
             loop ()
           in
           loop ()))
  done;
  let window_ns = 10_000_000 in
  let at_start = ref 0 and at_end = ref 0 in
  Engine.schedule w.engine ~delay:1_000_000 (fun () -> at_start := Monitor.handled monitor);
  Engine.schedule w.engine ~delay:(1_000_000 + window_ns) (fun () ->
      at_end := Monitor.handled monitor;
      Engine.stop w.engine);
  Engine.run ~until:(2_000_000 + window_ns) w.engine;
  float_of_int (!at_end - !at_start) /. (float_of_int window_ns /. 1e9)

let run () =
  header "Connection scalability (§6)";
  let app = app_conn_rate () in
  let mon = monitor_rate () in
  tsv_row [ "libsd thread connections/s"; f2 (mops app) ^ "M"; "paper: 1.4M" ];
  tsv_row [ "monitor control msgs/s"; f2 (mops mon) ^ "M"; "paper: 5.3M" ];
  (app, mon)
