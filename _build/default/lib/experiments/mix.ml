(* Extension experiments beyond the paper's figures:

   1. "mix": goodput on the wide-area message-size mix the paper cites
      ([70]) — small messages dominate counts, bulk dominates bytes — across
      all stacks, inter-host.
   2. "loadlat": open-loop latency vs offered load for SocksDirect vs Linux
      intra-host — the classic hockey-stick; shows where each stack's
      service rate saturates. *)

open Sds_sim
open Common
module Dist = Sds_workloads.Dist

(* ---- 1. internet-mix goodput ---- *)

(* Closed-loop stream of Internet_mix-sized messages; returns (msg/s, Gbps). *)
let mix_point (module Api : Sds_apps.Sock_api.S) =
  let w = make_world () in
  let h1 = add_host w in
  let h2 = add_host w in
  let bytes_recv = ref 0 and msgs_sent = ref 0 in
  let ready = ref false in
  ignore
    (Proc.spawn w.engine ~name:"mix-server" (fun () ->
         let ep = Api.make_endpoint h2 ~core:1 in
         let l = Api.listen ep ~port:7800 in
         ready := true;
         let c = Api.accept ep l in
         let buf = Bytes.create 65536 in
         let rec loop () =
           let n = Api.recv ep c buf ~off:0 ~len:65536 in
           if n > 0 then begin
             bytes_recv := !bytes_recv + n;
             loop ()
           end
         in
         loop ()));
  ignore
    (Proc.spawn w.engine ~name:"mix-client" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint h1 ~core:0 in
         let c = Api.connect ep ~dst:h2 ~port:7800 in
         let rng = Rng.create ~seed:31 in
         let buf = Bytes.create 65536 in
         let rec loop () =
           let size = Dist.sample_size rng Dist.Internet_mix in
           let sent = ref 0 in
           while !sent < size do
             sent := !sent + Api.send ep c buf ~off:!sent ~len:(size - !sent)
           done;
           incr msgs_sent;
           loop ()
         in
         loop ()));
  let window_ns = 10_000_000 in
  let b0 = ref 0 and b1 = ref 0 and m0 = ref 0 and m1 = ref 0 in
  Engine.schedule w.engine ~delay:2_000_000 (fun () ->
      b0 := !bytes_recv;
      m0 := !msgs_sent);
  Engine.schedule w.engine ~delay:(2_000_000 + window_ns) (fun () ->
      b1 := !bytes_recv;
      m1 := !msgs_sent;
      Engine.stop w.engine);
  Engine.run ~until:(3_000_000 + window_ns) w.engine;
  let secs = float_of_int window_ns /. 1e9 in
  (float_of_int (!m1 - !m0) /. secs, float_of_int (!b1 - !b0) *. 8.0 /. 1e9 /. secs)

let run_mix () =
  header "Extension: inter-host goodput on the wide-area size mix ([70])";
  tsv_row [ "stack"; "Mmsg/s"; "Gbps" ];
  List.map
    (fun stack ->
      let (module Api : Sds_apps.Sock_api.S) = stack in
      let msgs, gbps = mix_point stack in
      tsv_row [ Api.name; f2 (mops msgs); f2 gbps ];
      (Api.name, msgs, gbps))
    [
      ((module Sds_apps.Sock_api.Sds) : (module Sds_apps.Sock_api.S));
      (module Sds_apps.Sock_api.Linux);
      (module Sds_apps.Sock_api.Libvma);
      (module Sds_apps.Sock_api.Rsocket);
    ]

(* ---- 2. latency vs offered load ---- *)

(* Open-loop: a Poisson stream of 64-byte requests at [rate]; the server
   echoes; latency measured per message by matching send timestamps. *)
let loadlat_point (module Api : Sds_apps.Sock_api.S) ~rate_per_sec =
  let w = make_world () in
  let h = add_host w in
  let stats = Stats.create () in
  let ready = ref false in
  ignore
    (Proc.spawn w.engine ~name:"ll-server" (fun () ->
         let ep = Api.make_endpoint h ~core:1 in
         let l = Api.listen ep ~port:7801 in
         ready := true;
         let c = Api.accept ep l in
         let buf = Bytes.create 64 in
         let rec loop () =
           let got = ref 0 in
           let eof = ref false in
           while !got < 64 && not !eof do
             let n = Api.recv ep c buf ~off:!got ~len:(64 - !got) in
             if n = 0 then eof := true else got := !got + n
           done;
           if not !eof then begin
             (* Echo just the 8-byte timestamp header back. *)
             let sent = ref 0 in
             while !sent < 8 do
               sent := !sent + Api.send ep c buf ~off:!sent ~len:(8 - !sent)
             done;
             loop ()
           end
         in
         loop ()));
  (* The sender is open-loop: it never waits for replies. *)
  ignore
    (Proc.spawn w.engine ~name:"ll-sender" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ep = Api.make_endpoint h ~core:0 in
         let c = Api.connect ep ~dst:h ~port:7801 in
         (* A separate reader proc consumes echoes and computes latency. *)
         ignore
           (Proc.spawn w.engine ~name:"ll-reader" (fun () ->
                let buf = Bytes.create 8 in
                let rec loop () =
                  let got = ref 0 in
                  while !got < 8 do
                    let n = Api.recv ep c buf ~off:!got ~len:(8 - !got) in
                    if n = 0 then failwith "ll-reader: eof";
                    got := !got + n
                  done;
                  let t_sent = Int64.to_int (Bytes.get_int64_le buf 0) in
                  Stats.add stats (float_of_int (Engine.now w.engine - t_sent));
                  loop ()
                in
                loop ()));
         let rng = Rng.create ~seed:33 in
         let buf = Bytes.create 64 in
         let rec send_loop () =
           Proc.sleep_ns (Dist.poisson_gap_ns rng ~rate_per_sec);
           Bytes.set_int64_le buf 0 (Int64.of_int (Engine.now w.engine));
           let sent = ref 0 in
           while !sent < 64 do
             sent := !sent + Api.send ep c buf ~off:!sent ~len:(64 - !sent)
           done;
           send_loop ()
         in
         send_loop ()));
  Engine.run ~until:30_000_000 w.engine;
  Stats.summarize stats

let run_loadlat () =
  header "Extension: 64-byte request latency vs offered load (intra-host, open loop)";
  tsv_row [ "offered Mreq/s"; "SD mean us"; "SD p99 us"; "Linux mean us"; "Linux p99 us" ];
  List.map
    (fun rate ->
      let sd = loadlat_point (module Sds_apps.Sock_api.Sds) ~rate_per_sec:rate in
      let lx_rate = min rate 500_000.0 (* beyond Linux's service rate the queue diverges *) in
      let lx = loadlat_point (module Sds_apps.Sock_api.Linux) ~rate_per_sec:lx_rate in
      tsv_row
        [
          Fmt.str "%.2f" (rate /. 1e6);
          f2 (ns_to_us sd.Stats.mean_v);
          f2 (ns_to_us sd.Stats.p99);
          f2 (ns_to_us lx.Stats.mean_v) ^ Fmt.str " (@%.2fM)" (lx_rate /. 1e6);
          f2 (ns_to_us lx.Stats.p99);
        ];
      (rate, sd, lx))
    [ 100_000.; 500_000.; 2_000_000.; 8_000_000.; 16_000_000. ]
