(** Extension experiments: goodput on the wide-area message-size mix, and
    open-loop latency vs offered load. *)

val mix_point : (module Sds_apps.Sock_api.S) -> float * float
(** [(messages/s, Gbps)] on the Internet_mix distribution, inter-host. *)

val run_mix : unit -> (string * float * float) list

val loadlat_point : (module Sds_apps.Sock_api.S) -> rate_per_sec:float -> Sds_sim.Stats.summary
(** Latency distribution of 64-byte requests at a Poisson offered load. *)

val run_loadlat : unit -> (float * Sds_sim.Stats.summary * Sds_sim.Stats.summary) list
