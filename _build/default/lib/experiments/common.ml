(* Shared machinery for the evaluation harness: worlds, ping-pong latency,
   closed-loop streaming throughput, multi-pair scaling — all generic over
   the socket stack so every figure sweeps the same workload across
   SocksDirect, Linux, LibVMA, RSocket and raw transports. *)

open Sds_sim
open Sds_transport

type world = { engine : Engine.t; cost : Cost.t; rng : Rng.t; mutable hosts : Host.t list }

let make_world ?(cost = Cost.default) ?(seed = 7) () =
  (* Baseline stacks keep per-run registries; clear them between worlds. *)
  Sds_baselines.Rsocket.reset ();
  Sds_baselines.Libvma.reset ();
  Raw_stacks.Raw_rdma.reset ();
  Raw_stacks.Raw_shm.reset ();
  { engine = Engine.create (); cost; rng = Rng.create ~seed; hosts = [] }

let add_host ?(cores = 40) ?(rdma = true) w =
  let id = List.length w.hosts in
  let h = Host.create w.engine ~cost:w.cost ~id ~cores ~rdma ~rng:w.rng () in
  w.hosts <- w.hosts @ [ h ];
  h

let ns_to_us ns = ns /. 1e3

(* ---- ping-pong latency ---- *)

(* Round-trip latency of [size]-byte messages between two endpoints.
   [intra] places both on one host (different cores); otherwise two hosts.
   Returns summary statistics over [rounds] measured round trips. *)
let pingpong (module Api : Sds_apps.Sock_api.S) w ~client_host ~server_host ~size ~rounds
    ~warmup =
  let port = 7000 in
  let stats = Stats.create () in
  let ready = ref false in
  let _server =
    Proc.spawn w.engine ~name:"pp-server" (fun () ->
        let ep = Api.make_endpoint server_host ~core:1 in
        let l = Api.listen ep ~port in
        ready := true;
        let c = Api.accept ep l in
        let buf = Bytes.create size in
        let total = rounds + warmup in
        for _ = 1 to total do
          let got = ref 0 in
          while !got < size do
            let n = Api.recv ep c buf ~off:!got ~len:(size - !got) in
            if n = 0 then failwith "pp-server: eof";
            got := !got + n
          done;
          let sent = ref 0 in
          while !sent < size do
            sent := !sent + Api.send ep c buf ~off:!sent ~len:(size - !sent)
          done
        done;
        Api.close ep c)
  in
  let finished = ref false in
  let _client =
    Proc.spawn w.engine ~name:"pp-client" (fun () ->
        while not !ready do
          Proc.sleep_ns 1_000
        done;
        let ep = Api.make_endpoint client_host ~core:0 in
        let c = Api.connect ep ~dst:server_host ~port in
        let buf = Bytes.create size in
        Bytes.fill buf 0 size 'p';
        for i = 1 to rounds + warmup do
          let t0 = Engine.now w.engine in
          let sent = ref 0 in
          while !sent < size do
            sent := !sent + Api.send ep c buf ~off:!sent ~len:(size - !sent)
          done;
          let got = ref 0 in
          while !got < size do
            let n = Api.recv ep c buf ~off:!got ~len:(size - !got) in
            if n = 0 then failwith "pp-client: eof";
            got := !got + n
          done;
          if i > warmup then Stats.add stats (float_of_int (Engine.now w.engine - t0))
        done;
        Api.close ep c;
        finished := true)
  in
  Engine.run ~until:60_000_000_000 w.engine;
  if not !finished then failwith "pingpong: did not finish within horizon";
  Stats.summarize stats

(* ---- streaming throughput ---- *)

(* Closed-loop unidirectional stream of [size]-byte messages between
   [pairs] thread pairs; counts receiver messages inside the measurement
   window.  Returns aggregate messages/second. *)
let stream_tput (module Api : Sds_apps.Sock_api.S) w ~client_host ~server_host ~size ~pairs
    ~warmup_ns ~window_ns =
  let port_base = 7100 in
  let received = Array.make pairs 0 in
  let at_start = Array.make pairs 0 in
  let at_end = Array.make pairs 0 in
  for p = 0 to pairs - 1 do
    let ready = ref false in
    let _server =
      Proc.spawn w.engine ~name:(Fmt.str "st-server%d" p) (fun () ->
          let ep = Api.make_endpoint server_host ~core:p in
          let l = Api.listen ep ~port:(port_base + p) in
          ready := true;
          let c = Api.accept ep l in
          let buf = Bytes.create (max size 65536) in
          (* Count bytes: stream stacks may deliver partial reads. *)
          let rec loop () =
            let n = Api.recv ep c buf ~off:0 ~len:(Bytes.length buf) in
            if n > 0 then begin
              received.(p) <- received.(p) + n;
              loop ()
            end
          in
          loop ())
    in
    let _client =
      Proc.spawn w.engine ~name:(Fmt.str "st-client%d" p) (fun () ->
          while not !ready do
            Proc.sleep_ns 1_000
          done;
          (* Client cores are disjoint from server cores even intra-host. *)
          let ep = Api.make_endpoint client_host ~core:(pairs + p) in
          let c = Api.connect ep ~dst:server_host ~port:(port_base + p) in
          let buf = Bytes.create size in
          Bytes.fill buf 0 size 's';
          let rec loop () =
            let sent = ref 0 in
            while !sent < size do
              sent := !sent + Api.send ep c buf ~off:!sent ~len:(size - !sent)
            done;
            loop ()
          in
          loop ())
    in
    ()
  done;
  (* Sample received byte counts at window boundaries.  Slow stacks with
     lumpy receive completion (e.g. interrupt-bound kernel TCP) get the
     window extended until at least ten messages complete inside it. *)
  let setup_slack = 2_000_000 in
  let total_bytes window_ns =
    let t0 = Engine.now w.engine + setup_slack + warmup_ns in
    Engine.schedule_at w.engine ~time:t0 (fun () -> Array.blit received 0 at_start 0 pairs);
    Engine.schedule_at w.engine ~time:(t0 + window_ns) (fun () ->
        Array.blit received 0 at_end 0 pairs;
        Engine.stop w.engine);
    Engine.run ~until:(t0 + window_ns) w.engine;
    let total = ref 0 in
    for p = 0 to pairs - 1 do
      total := !total + (at_end.(p) - at_start.(p))
    done;
    !total
  in
  let rec measure window_ns attempts =
    let bytes = total_bytes window_ns in
    if bytes >= 10 * size || attempts = 0 then
      float_of_int bytes /. float_of_int size /. (float_of_int window_ns /. 1e9)
    else measure (window_ns * 5) (attempts - 1)
  in
  measure window_ns 4

let mops v = v /. 1e6
let gbps ~size ~msg_per_s = msg_per_s *. float_of_int size *. 8.0 /. 1e9

(* ---- output helpers ---- *)

let header title = Fmt.pr "@.== %s ==@." title

let tsv_row cells = Fmt.pr "%s@." (String.concat "\t" cells)

let f2 v = Fmt.str "%.2f" v
let f3 v = Fmt.str "%.3f" v
