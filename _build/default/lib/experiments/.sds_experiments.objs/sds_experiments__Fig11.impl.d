lib/experiments/fig11.ml: Common Engine List Proc Sds_apps Sds_sim Stats
