lib/experiments/fig78.ml: Common List Raw_stacks Sds_apps Sds_sim
