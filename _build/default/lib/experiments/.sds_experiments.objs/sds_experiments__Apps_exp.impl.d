lib/experiments/apps_exp.ml: Bytes Common Engine Proc Sds_apps Sds_sim Stats
