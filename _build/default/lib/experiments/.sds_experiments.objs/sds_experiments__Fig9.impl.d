lib/experiments/fig9.ml: Common Float List Raw_stacks Sds_apps Sds_baselines
