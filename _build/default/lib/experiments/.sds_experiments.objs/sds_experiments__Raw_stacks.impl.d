lib/experiments/raw_stacks.ml: Bytes Hashtbl Host Msg Nic Proc Queue Sds_apps Sds_sim Sds_transport Shm_chan Waitq
