lib/experiments/fig10.ml: Bytes Common Cost Engine Fmt List Proc Sds_apps Sds_sim Socksdirect Stats
