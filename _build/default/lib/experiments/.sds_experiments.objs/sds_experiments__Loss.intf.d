lib/experiments/loss.mli: Sds_transport
