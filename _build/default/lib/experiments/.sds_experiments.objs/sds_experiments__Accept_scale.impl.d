lib/experiments/accept_scale.ml: Array Bytes Common Engine Fmt List Proc Sds_apps Sds_sim Socksdirect String
