lib/experiments/fig12.ml: Array Common Engine Fmt List Proc Sds_apps Sds_kernel Sds_sim
