lib/experiments/ablation.mli:
