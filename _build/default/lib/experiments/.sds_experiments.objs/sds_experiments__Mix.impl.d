lib/experiments/mix.ml: Bytes Common Engine Fmt Int64 List Proc Rng Sds_apps Sds_sim Sds_workloads Stats
