lib/experiments/apps_exp.mli: Sds_apps Sds_sim
