lib/experiments/common.ml: Array Bytes Cost Engine Fmt Host List Proc Raw_stacks Rng Sds_apps Sds_baselines Sds_sim Sds_transport Stats String
