lib/experiments/qpscale.mli:
