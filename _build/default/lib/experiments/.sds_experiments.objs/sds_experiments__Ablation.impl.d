lib/experiments/ablation.ml: Bytes Common Cost Engine Proc Sds_apps Sds_sim Socksdirect
