lib/experiments/fig11.mli: Sds_apps Sds_sim
