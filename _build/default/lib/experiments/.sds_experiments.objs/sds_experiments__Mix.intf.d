lib/experiments/mix.mli: Sds_apps Sds_sim
