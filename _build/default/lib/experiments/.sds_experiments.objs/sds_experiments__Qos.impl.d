lib/experiments/qos.ml: Bytes Common Engine Host Msg Nic Proc Sds_sim Sds_transport
