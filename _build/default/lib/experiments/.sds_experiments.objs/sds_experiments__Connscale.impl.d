lib/experiments/connscale.ml: Common Engine Fmt Proc Sds_sim Socksdirect
