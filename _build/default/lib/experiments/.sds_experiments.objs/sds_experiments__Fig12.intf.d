lib/experiments/fig12.mli: Sds_apps
