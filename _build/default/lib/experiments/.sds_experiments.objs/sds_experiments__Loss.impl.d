lib/experiments/loss.ml: Common Fmt Host List Nic Sds_apps Sds_sim Sds_transport
