lib/experiments/fig9.mli: Sds_apps
