lib/experiments/fig78.mli: Sds_apps Sds_sim
