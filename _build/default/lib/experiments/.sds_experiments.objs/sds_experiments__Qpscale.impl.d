lib/experiments/qpscale.ml: Common Host List Nic Raw_stacks Sds_sim Sds_transport Stats
