lib/experiments/tables.mli:
