lib/experiments/tables.ml: Bytes Common Cost Engine Fmt List Proc Raw_stacks Sds_apps Sds_baselines Sds_kernel Sds_sim Stats
