lib/experiments/connscale.mli:
