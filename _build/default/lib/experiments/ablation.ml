(* Ablations of the design decisions DESIGN.md calls out:

   1. token sharing vs per-op locking vs per-op take-over (§4.1.1's 27 / 5 /
      1.6 Mop/s discussion);
   2. adaptive batching on/off (inter-host 8-byte throughput);
   3. zero copy on/off (intra-host 1 MiB throughput);
   4. polling vs immediate interrupt mode (intra-host latency). *)

open Sds_sim
open Common
module L = Socksdirect.Libsd
module Token = Socksdirect.Token

(* Two threads of one process alternating sends on ONE shared socket: every
   send needs a token take-over — the worst case of §4.1.1. *)
let takeover_alternating_rate () =
  let w = make_world () in
  let h = add_host w in
  let received = ref 0 in
  let ready = ref false in
  ignore
    (Proc.spawn w.engine ~name:"ab-server" (fun () ->
         let ctx = L.init h in
         let th = L.create_thread ctx ~core:2 () in
         let lfd = L.socket th in
         L.bind th lfd ~port:9100;
         L.listen th lfd;
         ready := true;
         let fd = L.accept th lfd in
         let buf = Bytes.create 64 in
         let rec loop () =
           let n = L.recv th fd buf ~off:0 ~len:64 in
           if n > 0 then begin
             received := !received + (n / 8);
             loop ()
           end
         in
         loop ()));
  ignore
    (Proc.spawn w.engine ~name:"ab-client" (fun () ->
         while not !ready do
           Proc.sleep_ns 1_000
         done;
         let ctx = L.init h in
         let th1 = L.create_thread ctx ~core:0 () in
         let th2 = L.create_thread ctx ~core:1 () in
         let fd = L.socket th1 in
         L.connect th1 fd ~dst:h ~port:9100;
         let buf = Bytes.create 8 in
         (* Alternate the sending thread on every message. *)
         let rec loop i =
           let th = if i land 1 = 0 then th1 else th2 in
           ignore (L.send th fd buf ~off:0 ~len:8);
           loop (i + 1)
         in
         loop 0));
  let window_ns = 5_000_000 in
  let at_start = ref 0 and at_end = ref 0 in
  Engine.schedule w.engine ~delay:1_000_000 (fun () -> at_start := !received);
  Engine.schedule w.engine ~delay:(1_000_000 + window_ns) (fun () ->
      at_end := !received;
      Engine.stop w.engine);
  Engine.run ~until:(2_000_000 + window_ns) w.engine;
  float_of_int (!at_end - !at_start) /. (float_of_int window_ns /. 1e9)

let run () =
  header "Ablation: token-based sharing (§4.1.1)";
  let single =
    let w = make_world () in
    let h = add_host w in
    stream_tput (module Sds_apps.Sock_api.Sds) w ~client_host:h ~server_host:h ~size:8 ~pairs:1
      ~warmup_ns:1_000_000 ~window_ns:5_000_000
  in
  let alternating = takeover_alternating_rate () in
  (* Hypothetical per-op lock: queue cost plus one uncontended spinlock. *)
  let cost = Cost.default in
  let locked =
    1e9 /. ((1e9 /. single) +. float_of_int cost.Cost.spinlock)
  in
  tsv_row [ "single owner (token fast path)"; f2 (mops single) ^ " Mop/s" ];
  tsv_row [ "per-op locking (modelled)"; f2 (mops locked) ^ " Mop/s" ];
  tsv_row [ "alternating take-over (worst case)"; f2 (mops alternating) ^ " Mop/s" ];

  header "Ablation: adaptive batching (§4.2)";
  let tput config_name (module Api : Sds_apps.Sock_api.S) =
    let w = make_world () in
    let h1 = add_host w in
    let h2 = add_host w in
    let v =
      stream_tput (module Api) w ~client_host:h1 ~server_host:h2 ~size:8 ~pairs:1
        ~warmup_ns:1_000_000 ~window_ns:5_000_000
    in
    tsv_row [ config_name; f2 (mops v) ^ " Mmsg/s" ];
    v
  in
  let batched = tput "batching on" (module Sds_apps.Sock_api.Sds) in
  let unbatched = tput "batching off" (module Sds_apps.Sock_api.Sds_unopt) in

  header "Ablation: zero copy (§4.3), intra-host 1 MiB";
  let big config_name (module Api : Sds_apps.Sock_api.S) =
    let w = make_world () in
    let h = add_host w in
    let v =
      stream_tput (module Api) w ~client_host:h ~server_host:h ~size:1048576 ~pairs:1
        ~warmup_ns:2_000_000 ~window_ns:20_000_000
    in
    tsv_row [ config_name; f2 (gbps ~size:1048576 ~msg_per_s:v) ^ " Gbps" ];
    v
  in
  let zc = big "zero copy on" (module Sds_apps.Sock_api.Sds) in
  let nozc = big "zero copy off" (module Sds_apps.Sock_api.Sds_unopt) in
  (single, alternating, batched, unbatched, zc, nozc)
