(** Tables 1-4 of the paper: overhead inventory, micro-operation costs,
    the feature matrix, and the per-stack latency breakdown. *)

val run_table1 : unit -> unit
val run_table2 : unit -> unit
val run_table3 : unit -> unit
val run_table4 : unit -> unit
