(* sdlint — driver for the Sds_check lint pass (docs/static-analysis.md).

   Usage:
     sdlint                     lint the whole tree from the repo root
     sdlint --root DIR          lint the tree rooted at DIR
     sdlint FILE.ml ...         lint specific files (repo-relative paths)
     sdlint --rule SLUG         restrict to one rule (repeatable)
     sdlint --list-rules        print the rule slugs and exit
     sdlint --format github     emit ::error workflow commands (CI
                                annotations); default is human-readable

   Exit status: 0 when clean, 1 on any violation, 2 on usage error. *)

module Lint = Sds_check.Lint

let () =
  let root = ref "." in
  let rules : string list ref = ref [] in
  let files : string list ref = ref [] in
  let list_rules = ref false in
  let quiet = ref false in
  let format = ref "human" in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repo root to lint (default: .)");
      ( "--rule",
        Arg.String (fun r -> rules := r :: !rules),
        "SLUG restrict to this rule (repeatable)" );
      ("--list-rules", Arg.Set list_rules, " print rule slugs and exit");
      ("--quiet", Arg.Set quiet, " print only the summary line");
      ( "--format",
        Arg.Symbol ([ "human"; "github" ], fun f -> format := f),
        " output format: human (default) or github (::error annotations)" );
    ]
  in
  let usage = "sdlint [--root DIR] [--rule SLUG]... [FILE.ml ...]" in
  Arg.parse spec (fun f -> files := f :: !files) usage;
  if !list_rules then begin
    List.iter print_endline Lint.all_rules;
    exit 0
  end;
  let config = Lint.default in
  (match !rules with
  | [] -> ()
  | rs ->
    List.iter
      (fun r ->
        if not (List.mem r Lint.all_rules) then begin
          Printf.eprintf "sdlint: unknown rule %S (try --list-rules)\n" r;
          exit 2
        end)
      rs);
  let violations =
    match !files with
    | [] -> Lint.lint_tree ~config ~root:!root
    | fs ->
      List.concat_map
        (fun path ->
          if not (Sys.file_exists (Filename.concat !root path)) then begin
            Printf.eprintf "sdlint: no such file: %s\n" path;
            exit 2
          end;
          Lint.lint_file ~config ~root:!root ~path)
        (List.rev fs)
  in
  let violations =
    match !rules with
    | [] -> violations
    | rs -> List.filter (fun (v : Lint.violation) -> List.mem v.rule rs) violations
  in
  let render = if !format = "github" then Lint.to_github else Lint.to_string in
  if not !quiet then List.iter (fun v -> print_endline (render v)) violations;
  (* The summary stays on the human channel; workflow commands must be the
     only thing a github-format run prints. *)
  match List.length violations with
  | 0 ->
    if !format = "human" then print_endline "sdlint: clean";
    exit 0
  | n ->
    if !format = "human" then
      Printf.printf "sdlint: %d violation%s\n" n (if n = 1 then "" else "s");
    exit 1
