(* sdmodel — extracted-model inspector and golden drift gate
   (docs/static-analysis.md).

   The protocol models checked by Sds_check.Interleave are extracted from
   the annotated real sources ([@sds.model] regions); this tool renders
   those extractions and pins them to committed goldens so any change to
   an annotated hot path shows up as reviewable model drift in CI.

   Usage:
     sdmodel print [NAME...]      render extracted programs (all by default)
     sdmodel list                 print the model names and exit
     sdmodel check                diff extractions against test/golden/
     sdmodel check --update       rewrite the goldens from the current code
       --root DIR                 repo root (default: .)
       --golden-dir DIR           golden directory (default: test/golden)
       --dump-dir DIR             on drift, write the current renders here
                                  (CI uploads them as an artifact)

   Exit status: 0 clean, 1 on drift or a missing golden, 2 on a usage
   error or an extraction failure (an annotated region the specs no
   longer classify). *)

module I = Sds_check.Interleave
module M = Sds_check.Models
module E = Sds_check.Extract

let usage () =
  prerr_endline
    "usage: sdmodel [--root DIR] [--golden-dir DIR] [--dump-dir DIR]\n\
    \               {print [NAME...] | list | check [--update]}";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  go dir

(* First differing line, for a readable drift report. *)
let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go n = function
    | x :: xs, y :: ys when x = y -> go (n + 1) (xs, ys)
    | x :: _, y :: _ -> Some (n, x, y)
    | x :: _, [] -> Some (n, x, "<end of golden>")
    | [], y :: _ -> Some (n, "<end of golden>", y)
    | [], [] -> None
  in
  go 1 (la, lb)

let () =
  let root = ref "." in
  let golden_dir = ref None in
  let dump_dir = ref None in
  let update = ref false in
  let cmd = ref None in
  let names : string list ref = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: d :: rest -> root := d; parse rest
    | "--golden-dir" :: d :: rest -> golden_dir := Some d; parse rest
    | "--dump-dir" :: d :: rest -> dump_dir := Some d; parse rest
    | "--update" :: rest -> update := true; parse rest
    | ("--help" | "-help" | "-h") :: _ -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
      Printf.eprintf "sdmodel: unknown option %s\n" a;
      usage ()
    | a :: rest ->
      (match !cmd with None -> cmd := Some a | Some _ -> names := a :: !names);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let golden_dir =
    match !golden_dir with
    | Some d -> d
    | None -> Filename.concat !root (Filename.concat "test" "golden")
  in
  let models =
    try M.extracted ~root:!root
    with E.Error msg ->
      Printf.eprintf "sdmodel: extraction failed: %s\n" msg;
      exit 2
  in
  match !cmd with
  | Some "list" ->
    List.iter (fun (n, _) -> print_endline n) models;
    exit 0
  | Some "print" ->
    let wanted =
      match List.rev !names with
      | [] -> models
      | ns ->
        List.map
          (fun n ->
            match List.assoc_opt n models with
            | Some p -> (n, p)
            | None ->
              Printf.eprintf "sdmodel: unknown model %S (try: sdmodel list)\n" n;
              exit 2)
          ns
    in
    List.iter
      (fun (n, p) -> Printf.printf "--- %s ---\n%s" n (I.render_program p))
      wanted;
    exit 0
  | Some "check" ->
    if !names <> [] then usage ();
    let drift = ref 0 in
    List.iter
      (fun (name, p) ->
        let rendered = I.render_program p in
        let path = Filename.concat golden_dir (name ^ ".golden") in
        if !update then begin
          mkdir_p golden_dir;
          write_file path rendered;
          Printf.printf "sdmodel: wrote %s\n" path
        end
        else if not (Sys.file_exists path) then begin
          incr drift;
          Printf.printf "sdmodel: DRIFT %-22s no golden at %s\n" name path
        end
        else begin
          let golden = read_file path in
          if golden <> rendered then begin
            incr drift;
            (match first_diff golden rendered with
            | Some (line, g, r) ->
              Printf.printf
                "sdmodel: DRIFT %-22s first difference at line %d\n\
                \  golden:    %s\n  extracted: %s\n"
                name line g r
            | None -> Printf.printf "sdmodel: DRIFT %-22s differs\n" name)
          end
          else Printf.printf "sdmodel: ok    %s\n" name
        end;
        match !dump_dir with
        | Some d when not !update ->
          mkdir_p d;
          write_file (Filename.concat d (name ^ ".extracted")) rendered
        | _ -> ())
      models;
    if !update then exit 0
    else if !drift > 0 then begin
      Printf.printf
        "sdmodel: %d model%s drifted from the goldens.\n\
         If the hot-path change is intentional, regenerate with\n\
        \  dune exec bin/sdmodel.exe -- check --update\n\
         and commit the golden diff for review.\n"
        !drift
        (if !drift = 1 then "" else "s");
      exit 1
    end
    else begin
      print_endline "sdmodel: goldens match the annotated sources";
      exit 0
    end
  | _ -> usage ()
