(* sdsim: command-line driver for the SocksDirect reproduction experiments.

     sdsim list                 show available experiments
     sdsim run fig7 fig8 ...    run selected experiments
     sdsim run --all            run everything
     sdsim stats [--json]       exercise the data path, dump the metrics *)

open Cmdliner
module Obs = Sds_obs.Obs
module Common = Sds_experiments.Common

let experiments : (string * string * (unit -> unit)) list =
  [
    ("table1", "overhead inventory and solutions", fun () -> Sds_experiments.Tables.run_table1 ());
    ("table2", "micro-operation latency/throughput", fun () -> Sds_experiments.Tables.run_table2 ());
    ("table3", "socket system feature matrix", fun () -> Sds_experiments.Tables.run_table3 ());
    ("table4", "latency breakdown per stack", fun () -> Sds_experiments.Tables.run_table4 ());
    ("fig7", "intra-host tput/latency vs message size", fun () -> ignore (Sds_experiments.Fig78.run_fig7 ()));
    ("fig8", "inter-host tput/latency vs message size", fun () -> ignore (Sds_experiments.Fig78.run_fig8 ()));
    ("fig9", "8-byte throughput vs cores", fun () -> ignore (Sds_experiments.Fig9.run ()));
    ("fig10", "latency vs processes per core", fun () -> ignore (Sds_experiments.Fig10.run ()));
    ("fig11", "Nginx HTTP latency vs response size", fun () -> ignore (Sds_experiments.Fig11.run ()));
    ("fig12", "NF pipeline throughput vs #NFs", fun () -> ignore (Sds_experiments.Fig12.run ()));
    ("redis", "Redis GET latency", fun () -> ignore (Sds_experiments.Apps_exp.run_redis ()));
    ("rpc", "RPClib 1 KiB RPC latency", fun () -> ignore (Sds_experiments.Apps_exp.run_rpc ()));
    ("connscale", "connection setup scalability", fun () -> ignore (Sds_experiments.Connscale.run ()));
    ("qpscale", "latency vs live QPs (NIC cache)", fun () -> ignore (Sds_experiments.Qpscale.run ()));
    ("loss", "lossy fabric: go-back-N vs selective", fun () -> ignore (Sds_experiments.Loss.run ()));
    ("mix", "goodput on the wide-area size mix", fun () -> ignore (Sds_experiments.Mix.run_mix ()));
    ("loadlat", "latency vs offered load", fun () -> ignore (Sds_experiments.Mix.run_loadlat ()));
    ("acceptscale", "pre-fork accept scaling", fun () -> ignore (Sds_experiments.Accept_scale.run ()));
    ("qos", "NIC-offloaded per-flow rate limiting", fun () -> ignore (Sds_experiments.Qos.run ()));
    ("ablation", "design-choice ablations", fun () -> ignore (Sds_experiments.Ablation.run ()));
  ]

let list_cmd =
  let doc = "List available experiments." in
  let run () = List.iter (fun (name, doc, _) -> Fmt.pr "%-10s %s@." name doc) experiments in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run selected experiments (or --all)." in
  let names = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  let all = Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.") in
  let run all names =
    let selected = if all || names = [] then List.map (fun (n, _, _) -> n) experiments else names in
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, _, f) -> f ()
        | None -> Fmt.epr "unknown experiment %S (try: sdsim list)@." name)
      selected
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ all $ names)

(* A short representative workload that lights up every instrumented layer:
   an intra-host ping-pong (SHM rings, monitor dispatch, token fast path),
   an intra-host large-message ping-pong (the §4.6 shared page pool:
   pool.* alloc/release churn, descriptor remaps, selective-copy policy),
   and an inter-host large-message ping-pong (RDMA QPs, NIC wire bytes,
   zero-copy page remapping). *)
let stats_workload () =
  let w = Common.make_world () in
  Sds_sim.Engine.install_trace_clock w.Common.engine;
  Sds_sim.Engine.install_span_clock w.Common.engine;
  let h = Common.add_host w in
  ignore
    (Common.pingpong
       (module Sds_apps.Sock_api.Sds)
       w ~client_host:h ~server_host:h ~size:64 ~rounds:512 ~warmup:32);
  let w1 = Common.make_world () in
  Sds_sim.Engine.install_trace_clock w1.Common.engine;
  Sds_sim.Engine.install_span_clock w1.Common.engine;
  let h1 = Common.add_host w1 in
  ignore
    (Common.pingpong
       (module Sds_apps.Sock_api.Sds)
       w1 ~client_host:h1 ~server_host:h1 ~size:32768 ~rounds:64 ~warmup:8);
  let w2 = Common.make_world () in
  Sds_sim.Engine.install_trace_clock w2.Common.engine;
  Sds_sim.Engine.install_span_clock w2.Common.engine;
  let a = Common.add_host w2 in
  let b = Common.add_host w2 in
  ignore
    (Common.pingpong
       (module Sds_apps.Sock_api.Sds)
       w2 ~client_host:a ~server_host:b ~size:32768 ~rounds:64 ~warmup:8)

let stats_cmd =
  let doc = "Run a representative workload and print the metrics snapshot." in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the snapshot as JSON.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the snapshot as JSON to $(docv).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the event trace as Chrome trace-event JSON to $(docv).")
  in
  let run json out trace_out =
    Obs.Metrics.reset ();
    Obs.Trace.clear ();
    stats_workload ();
    let js = Obs.Metrics.to_json () in
    if json then print_string js else print_string (Obs.Metrics.to_text ());
    (match out with
    | Some f -> Out_channel.with_open_text f (fun oc -> output_string oc js)
    | None -> ());
    match trace_out with
    | Some f ->
      let events = Obs.Trace.drain () in
      Out_channel.with_open_text f (fun oc -> output_string oc (Obs.Trace.to_chrome_json events))
    | None -> ()
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ json $ out $ trace_out)

(* `sdsim top`: a lightweight live view.  Each frame re-runs a short
   workload and renders per-stage span percentiles plus pool/ring
   occupancy, overwriting the screen — the text-mode analogue of watching
   latency attribution move as the data path runs. *)

let top_frame_workload () =
  let w = Common.make_world () in
  Sds_sim.Engine.install_trace_clock w.Common.engine;
  Sds_sim.Engine.install_span_clock w.Common.engine;
  let h = Common.add_host w in
  ignore
    (Common.pingpong
       (module Sds_apps.Sock_api.Sds)
       w ~client_host:h ~server_host:h ~size:64 ~rounds:256 ~warmup:16);
  let w1 = Common.make_world () in
  Sds_sim.Engine.install_trace_clock w1.Common.engine;
  Sds_sim.Engine.install_span_clock w1.Common.engine;
  let h1 = Common.add_host w1 in
  ignore
    (Common.pingpong
       (module Sds_apps.Sock_api.Sds)
       w1 ~client_host:h1 ~server_host:h1 ~size:32768 ~rounds:32 ~warmup:4)

let render_top ~frame ~frames =
  let snap = Obs.Metrics.snapshot () in
  let counter name =
    match List.assoc_opt name snap.Obs.Metrics.counters with Some v -> v | None -> 0
  in
  let gauge name =
    match List.assoc_opt name snap.Obs.Metrics.gauges with Some v -> v | None -> 0
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "sdsim top — frame %d/%d  (spans in simulated ns)\n\n" frame frames);
  Buffer.add_string b
    (Printf.sprintf "%-12s %10s %10s %10s %10s\n" "stage" "count" "p50" "p99" "p999");
  List.iter
    (fun (name, hs) ->
      if String.length name > 5 && String.sub name 0 5 = "span." then
        Buffer.add_string b
          (Printf.sprintf "%-12s %10d %10d %10d %10d\n" name hs.Obs.Metrics.hs_count
             hs.Obs.Metrics.hs_p50 hs.Obs.Metrics.hs_p99 hs.Obs.Metrics.hs_p999))
    snap.Obs.Metrics.histograms;
  let pages = gauge "pool.pages" and in_use = gauge "pool.pages_in_use" in
  let occ = if pages > 0 then 100. *. float_of_int in_use /. float_of_int pages else 0. in
  Buffer.add_string b
    (Printf.sprintf "\npool: %d/%d pages in use (%.1f%%)   copy threshold: %d B (%d switches)\n"
       in_use pages occ (gauge "copy_policy.threshold") (counter "copy_policy.switches"));
  Buffer.add_string b
    (Printf.sprintf "ring: %d enq / %d deq (backlog %d)   parks: %d  wakes: %d\n"
       (counter "ring.enqueues") (counter "ring.dequeues")
       (counter "ring.enqueues" - counter "ring.dequeues")
       (counter "notify.parks") (counter "notify.wakes"));
  Buffer.contents b

let top_cmd =
  let doc = "Live text view: per-stage span percentiles and occupancy." in
  let frames =
    Arg.(value & opt int 5 & info [ "frames" ] ~docv:"N" ~doc:"Number of frames to render.")
  in
  let no_clear =
    Arg.(value & flag & info [ "no-clear" ] ~doc:"Do not clear the screen between frames.")
  in
  let interval =
    Arg.(
      value
      & opt float 0.2
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Delay between frames.")
  in
  let run frames no_clear interval =
    for frame = 1 to frames do
      Obs.Metrics.reset ();
      top_frame_workload ();
      if not no_clear then print_string "\027[2J\027[H";
      print_string (render_top ~frame ~frames);
      flush stdout;
      if frame < frames && interval > 0. then Unix.sleepf interval
    done
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const run $ frames $ no_clear $ interval)

let () =
  Sds_obs.Flight.install ();
  let doc = "SocksDirect (SIGCOMM'19) reproduction experiment driver" in
  let info = Cmd.info "sdsim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; stats_cmd; top_cmd ]))
